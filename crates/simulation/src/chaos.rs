//! Deterministic fault injection for the probe→tsdb metrics pipeline.
//!
//! A [`FaultPlan`] describes, from a single seed, every way the
//! monitoring path can misbehave during a replay:
//!
//! * **scrape drops** — a scraped frame is lost before it reaches the
//!   database (rate per frame),
//! * **probe silence windows** — a node's probes stop reporting entirely
//!   for a scheduled interval (the headline staleness scenario),
//! * **delayed frames** — a frame is held in flight and delivered later,
//!   arriving out of time order at the store,
//! * **shard write failures** — the database write of a frame fails and
//!   the transport retries it with bounded exponential backoff
//!   ([`RetryPolicy`]), dropping the frame once the budget is exhausted.
//!
//! A [`FaultInjector`] consumes the plan: it owns a seeded RNG (derived
//! from the plan seed, independent of every other stream in the replay)
//! and tallies a [`FaultStats`] as the replay asks it to judge frames.
//! Everything is a pure function of `(plan, call sequence)`, so a replay
//! with a given plan is bit-identical across runs, and
//! [`FaultPlan::none`] — which the replay engine bypasses entirely — is
//! bit-identical to a replay with no injector at all (property-tested in
//! `tests/chaos_props.rs`).

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

use cluster::probe::RetryPolicy;
use des::rng::{derive_seed, seeded_rng};
use des::{SimDuration, SimTime};

/// A scheduled probe-silence window: the named node's scrapes are
/// swallowed for `[from_secs, until_secs)` of simulated time. Silence is
/// schedule-driven, not random — it models a wedged DaemonSet pod, the
/// failure mode that makes a loaded node read as idle.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbeSilence {
    /// Node whose probes go quiet.
    pub node: String,
    /// Window start, seconds into the replay (inclusive).
    pub from_secs: u64,
    /// Window end, seconds into the replay (exclusive).
    pub until_secs: u64,
}

impl ProbeSilence {
    /// Whether `now` falls inside the window.
    pub fn covers(&self, now: SimTime) -> bool {
        let from = SimTime::from_secs(self.from_secs);
        let until = SimTime::from_secs(self.until_secs);
        from <= now && now < until
    }
}

/// A seeded description of every fault the metrics pipeline suffers
/// during one replay. All rates are per-frame probabilities in `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of the fault RNG stream (independent of the replay seed).
    pub seed: u64,
    /// Probability a scraped frame is dropped outright.
    pub scrape_drop_rate: f64,
    /// Probability a scraped frame is delayed instead of delivered
    /// inline.
    pub delay_rate: f64,
    /// Upper bound of the (uniform) delay drawn for delayed frames.
    pub max_delay: SimDuration,
    /// Probability a frame's database write fails (each delivery attempt
    /// draws independently).
    pub write_fail_rate: f64,
    /// Retry policy of the probe transport for failed writes.
    pub retry: RetryPolicy,
    /// Scheduled per-node probe silence windows.
    pub silences: Vec<ProbeSilence>,
}

impl FaultPlan {
    /// The fault-free plan: all rates zero, no silences. The replay
    /// engine special-cases it to the exact lossless code path.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            scrape_drop_rate: 0.0,
            delay_rate: 0.0,
            max_delay: SimDuration::ZERO,
            write_fail_rate: 0.0,
            retry: RetryPolicy::paper_defaults(),
            silences: Vec::new(),
        }
    }

    /// `true` when the plan can never perturb anything: every rate is
    /// zero and no silence window is scheduled.
    pub fn is_noop(&self) -> bool {
        self.scrape_drop_rate == 0.0
            && self.delay_rate == 0.0
            && self.write_fail_rate == 0.0
            && self.silences.is_empty()
    }

    /// Same plan with a different fault seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adds random scrape drops at `rate`.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` lies in `[0, 1]`.
    pub fn with_scrape_drops(mut self, rate: f64) -> Self {
        assert_rate(rate, "scrape drop rate");
        self.scrape_drop_rate = rate;
        self
    }

    /// Delays frames at `rate`, each by a uniform draw in
    /// `[0, max_delay]`.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` lies in `[0, 1]`.
    pub fn with_delays(mut self, rate: f64, max_delay: SimDuration) -> Self {
        assert_rate(rate, "delay rate");
        self.delay_rate = rate;
        self.max_delay = max_delay;
        self
    }

    /// Fails database writes at `rate` per delivery attempt.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` lies in `[0, 1]`.
    pub fn with_write_failures(mut self, rate: f64) -> Self {
        assert_rate(rate, "write failure rate");
        self.write_fail_rate = rate;
        self
    }

    /// Overrides the transport retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Schedules a probe silence window.
    pub fn with_silence(mut self, silence: ProbeSilence) -> Self {
        self.silences.push(silence);
        self
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

fn assert_rate(rate: f64, what: &str) {
    assert!(
        (0.0..=1.0).contains(&rate),
        "{what} must be in [0, 1], got {rate}"
    );
}

/// What the injector decided to do with one scraped frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFate {
    /// Deliver inline, this instant (still subject to write failures).
    Deliver,
    /// The node's probes are inside a silence window: the frame never
    /// existed.
    Silenced,
    /// Lost in transit.
    Dropped,
    /// Held in flight; deliver after this delay.
    Delayed(SimDuration),
}

/// Counters of everything the injector did to the pipeline, plus the
/// transport's own retry accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames the probes produced (before any fault).
    pub frames_scraped: u64,
    /// Frames swallowed by silence windows.
    pub frames_silenced: u64,
    /// Frames dropped in transit.
    pub frames_dropped: u64,
    /// Frames delivered late (out of order at the store).
    pub frames_delayed: u64,
    /// Individual database write failures (one frame can fail several
    /// times across retries).
    pub write_failures: u64,
    /// Redelivery attempts the transport scheduled.
    pub frames_retried: u64,
    /// Frames abandoned after the retry budget ran out.
    pub frames_lost: u64,
    /// Frames that reached the database.
    pub frames_delivered: u64,
    /// Write failures attributed to the shards the frame would have hit.
    pub write_failures_by_shard: BTreeMap<usize, u64>,
}

impl FaultStats {
    /// `true` when no fault of any kind fired.
    pub fn is_clean(&self) -> bool {
        self.frames_silenced == 0
            && self.frames_dropped == 0
            && self.frames_delayed == 0
            && self.write_failures == 0
            && self.frames_lost == 0
    }
}

/// Executes a [`FaultPlan`] over a replay: judges frames, draws delays
/// and write failures from its own seeded stream, and tallies
/// [`FaultStats`].
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: StdRng,
    stats: FaultStats,
}

impl FaultInjector {
    /// Creates an injector for `plan`. The RNG stream is derived from
    /// the plan seed alone, so two injectors with the same plan make the
    /// same decisions in the same call order.
    pub fn new(plan: FaultPlan) -> Self {
        let rng = seeded_rng(derive_seed(plan.seed, "chaos"));
        FaultInjector {
            plan,
            rng,
            stats: FaultStats::default(),
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The tally so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Consumes the injector, yielding the final tally.
    pub fn into_stats(self) -> FaultStats {
        self.stats
    }

    /// Whether `node`'s probes are inside a silence window at `now`.
    /// Schedule-driven: consumes no randomness.
    pub fn silenced(&self, node: &str, now: SimTime) -> bool {
        self.plan
            .silences
            .iter()
            .any(|s| s.node == node && s.covers(now))
    }

    /// Decides the fate of one frame scraped from `node` at `now`.
    ///
    /// Draw order per judged frame is fixed (silence check consumes no
    /// randomness; then one drop draw; then one delay draw, plus one
    /// magnitude draw when it fires) — part of the determinism contract.
    pub fn judge_frame(&mut self, node: &str, now: SimTime) -> FrameFate {
        self.stats.frames_scraped += 1;
        if self.silenced(node, now) {
            self.stats.frames_silenced += 1;
            return FrameFate::Silenced;
        }
        if self.rng.random::<f64>() < self.plan.scrape_drop_rate {
            self.stats.frames_dropped += 1;
            return FrameFate::Dropped;
        }
        if self.rng.random::<f64>() < self.plan.delay_rate {
            let delay = self.plan.max_delay.mul_f64(self.rng.random::<f64>());
            if delay > SimDuration::ZERO {
                self.stats.frames_delayed += 1;
                return FrameFate::Delayed(delay);
            }
            // A zero-magnitude delay is an inline delivery.
        }
        FrameFate::Deliver
    }

    /// Draws whether one delivery attempt's database write fails; on
    /// failure the blame is recorded against `shards` (the shards the
    /// frame's rows route to).
    pub fn draw_write_failure(&mut self, shards: &[usize]) -> bool {
        if self.rng.random::<f64>() < self.plan.write_fail_rate {
            self.stats.write_failures += 1;
            for &shard in shards {
                *self.stats.write_failures_by_shard.entry(shard).or_insert(0) += 1;
            }
            true
        } else {
            false
        }
    }

    /// Records a scheduled redelivery attempt.
    pub fn note_retry(&mut self) {
        self.stats.frames_retried += 1;
    }

    /// Records a frame abandoned after exhausting its retries.
    pub fn note_lost(&mut self) {
        self.stats.frames_lost += 1;
    }

    /// Records a frame that reached the database.
    pub fn note_delivered(&mut self) {
        self.stats.frames_delivered += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossy_plan() -> FaultPlan {
        FaultPlan::none()
            .with_seed(7)
            .with_scrape_drops(0.3)
            .with_delays(0.3, SimDuration::from_secs(20))
            .with_write_failures(0.2)
            .with_silence(ProbeSilence {
                node: "sgx-1".to_string(),
                from_secs: 100,
                until_secs: 200,
            })
    }

    #[test]
    fn noop_detection() {
        assert!(FaultPlan::none().is_noop());
        assert!(FaultPlan::default().is_noop());
        // A zero-rate plan with a silence window is NOT a no-op.
        assert!(!FaultPlan::none()
            .with_silence(ProbeSilence {
                node: "sgx-1".to_string(),
                from_secs: 0,
                until_secs: 1,
            })
            .is_noop());
        assert!(!FaultPlan::none().with_scrape_drops(0.01).is_noop());
        assert!(!FaultPlan::none()
            .with_delays(0.5, SimDuration::from_secs(5))
            .is_noop());
        assert!(!FaultPlan::none().with_write_failures(0.1).is_noop());
        // Changing only seed or retry keeps it a no-op.
        assert!(FaultPlan::none()
            .with_seed(99)
            .with_retry(RetryPolicy {
                max_retries: 9,
                backoff: SimDuration::from_secs(1),
            })
            .is_noop());
    }

    #[test]
    #[should_panic(expected = "scrape drop rate")]
    fn rates_are_validated() {
        let _ = FaultPlan::none().with_scrape_drops(1.5);
    }

    #[test]
    fn silence_windows_are_per_node_and_half_open() {
        let injector = FaultInjector::new(lossy_plan());
        assert!(!injector.silenced("sgx-1", SimTime::from_secs(99)));
        assert!(injector.silenced("sgx-1", SimTime::from_secs(100)));
        assert!(injector.silenced("sgx-1", SimTime::from_secs(199)));
        assert!(!injector.silenced("sgx-1", SimTime::from_secs(200)));
        assert!(!injector.silenced("sgx-2", SimTime::from_secs(150)));
    }

    #[test]
    fn same_plan_same_decisions() {
        let mut a = FaultInjector::new(lossy_plan());
        let mut b = FaultInjector::new(lossy_plan());
        for i in 0..500u64 {
            let now = SimTime::from_secs(i * 10);
            assert_eq!(a.judge_frame("sgx-1", now), b.judge_frame("sgx-1", now));
            assert_eq!(a.draw_write_failure(&[0, 1]), b.draw_write_failure(&[0, 1]));
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn lossy_plan_produces_every_fault_kind() {
        let mut injector = FaultInjector::new(lossy_plan());
        for i in 0..2_000u64 {
            match injector.judge_frame("sgx-1", SimTime::from_secs(i)) {
                FrameFate::Deliver => {
                    let failed = injector.draw_write_failure(&[2]);
                    if failed {
                        injector.note_lost();
                    } else {
                        injector.note_delivered();
                    }
                }
                FrameFate::Delayed(delay) => {
                    assert!(delay > SimDuration::ZERO);
                    assert!(delay <= SimDuration::from_secs(20));
                }
                FrameFate::Silenced | FrameFate::Dropped => {}
            }
        }
        let stats = injector.stats();
        assert!(!stats.is_clean());
        assert_eq!(stats.frames_scraped, 2_000);
        assert!(stats.frames_silenced >= 100); // the whole window
        assert!(stats.frames_dropped > 0);
        assert!(stats.frames_delayed > 0);
        assert!(stats.write_failures > 0);
        assert_eq!(
            stats.write_failures_by_shard.get(&2).copied(),
            Some(stats.write_failures)
        );
        assert_eq!(
            stats.frames_scraped,
            stats.frames_silenced
                + stats.frames_dropped
                + stats.frames_delayed
                + stats.frames_delivered
                + stats.frames_lost
        );
    }

    #[test]
    fn zero_rate_injector_delivers_everything() {
        let mut injector = FaultInjector::new(FaultPlan::none());
        for i in 0..100u64 {
            assert_eq!(
                injector.judge_frame("sgx-1", SimTime::from_secs(i)),
                FrameFate::Deliver
            );
            assert!(!injector.draw_write_failure(&[0]));
        }
        assert!(injector.stats().is_clean());
        assert_eq!(injector.into_stats().frames_scraped, 100);
    }
}

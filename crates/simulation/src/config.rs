//! Replay configuration.

use serde::{Deserialize, Serialize};

use cluster::topology::ClusterSpec;
use des::SimDuration;
use orchestrator::autoscale::{AutoscalerPolicy, PodGroupSpec};
use orchestrator::OrchestratorConfig;
use sgx_sim::cost::CostModel;

use crate::chaos::FaultPlan;

/// The malicious-tenant scenario of §VI-F: one malicious pod per SGX node,
/// each declaring a single EPC page but actually mapping `fraction` of its
/// node's usable EPC.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MaliciousConfig {
    /// Fraction of the node's usable EPC each malicious container maps
    /// (the paper runs 0.25 and 0.5).
    pub fraction: f64,
    /// When the malicious pods are submitted (early, so they squat for
    /// the whole replay).
    pub submit_at_secs: u64,
    /// How long the malicious pods run. The paper's squat for the whole
    /// experiment; default is several hours.
    pub duration: SimDuration,
}

impl MaliciousConfig {
    /// One malicious pod per SGX node using `fraction` of its EPC,
    /// submitted at t = 1 s and squatting for 12 h.
    pub fn squatting(fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "malicious fraction must be in (0, 1], got {fraction}"
        );
        MaliciousConfig {
            fraction,
            submit_at_secs: 1,
            duration: SimDuration::from_hours(12),
        }
    }
}

/// Periodic EPC rebalancing (§VIII): every `period` the replay runs one
/// [`Orchestrator::rebalance_epc`](orchestrator::Orchestrator::rebalance_epc)
/// pass, live-migrating SGX pods from the most- to the least-loaded node
/// while the requested-EPC imbalance exceeds `threshold`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RebalanceConfig {
    /// How often the rebalancer wakes up.
    pub period: SimDuration,
    /// Imbalance (spread of per-node requested-EPC fractions, in `[0, 1]`)
    /// above which pods are migrated.
    pub threshold: f64,
}

impl RebalanceConfig {
    /// A rebalancer firing every `period` with the given imbalance
    /// `threshold`.
    ///
    /// # Panics
    ///
    /// Panics unless `threshold` lies in `(0, 1]` and `period` is
    /// non-zero.
    pub fn every(period: SimDuration, threshold: f64) -> Self {
        assert!(
            threshold > 0.0 && threshold <= 1.0,
            "rebalance threshold must be in (0, 1], got {threshold}"
        );
        assert!(
            period > SimDuration::ZERO,
            "rebalance period must be non-zero"
        );
        RebalanceConfig { period, threshold }
    }

    /// The defaults used by the rebalancing experiments: a pass every
    /// 60 s at a 0.2 imbalance threshold.
    pub fn paper_defaults() -> Self {
        RebalanceConfig::every(SimDuration::from_secs(60), 0.2)
    }
}

/// Autoscaling for the replay: a periodic `AutoscaleTick` runs the
/// [`ClusterAutoscaler`](orchestrator::ClusterAutoscaler) (node-pool
/// elasticity from pending-queue pressure, SGX and non-SGX tiers scaled
/// independently) and, when `pod_groups` is non-empty, the
/// [`PodGroupAutoscaler`](orchestrator::PodGroupAutoscaler) (horizontal
/// replica scaling of long-running service groups).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutoscaleConfig {
    /// How often the controllers wake up.
    pub period: SimDuration,
    /// Node-pool thresholds, cooldowns and tier templates.
    pub policy: AutoscalerPolicy,
    /// Long-running service groups to horizontally scale (may be empty).
    #[serde(default)]
    pub pod_groups: Vec<PodGroupSpec>,
    /// When `true`, the replay runs
    /// [`Orchestrator::audit_invariants`](orchestrator::Orchestrator::audit_invariants)
    /// at every tick and panics on a violation — for tests; expensive on
    /// big clusters.
    #[serde(default)]
    pub audit: bool,
}

impl AutoscaleConfig {
    /// A controller firing every `period` under `policy`.
    ///
    /// # Panics
    ///
    /// Panics unless `period` is non-zero and `policy` passes
    /// [`AutoscalerPolicy::validate`].
    pub fn every(period: SimDuration, policy: AutoscalerPolicy) -> Self {
        assert!(
            period > SimDuration::ZERO,
            "autoscale period must be non-zero"
        );
        policy.validate();
        AutoscaleConfig {
            period,
            policy,
            pod_groups: Vec::new(),
            audit: false,
        }
    }

    /// The defaults used by the autoscaling experiments: a pass every
    /// 30 s under [`AutoscalerPolicy::paper_defaults`].
    pub fn paper_defaults() -> Self {
        AutoscaleConfig::every(
            SimDuration::from_secs(30),
            AutoscalerPolicy::paper_defaults(),
        )
    }

    /// Adds a horizontally scaled service group.
    ///
    /// # Panics
    ///
    /// Panics when the group fails [`PodGroupSpec::validate`].
    pub fn with_pod_group(mut self, group: PodGroupSpec) -> Self {
        group.validate();
        self.pod_groups.push(group);
        self
    }

    /// Audits orchestrator invariants at every tick (tests only).
    pub fn with_audit(mut self) -> Self {
        self.audit = true;
        self
    }
}

/// An injected maintenance window: at `drain_at_secs` the node is
/// cordoned and its pods are live-migrated away (those with no feasible
/// target stay put on the cordoned node); `down_for` later the node is
/// un-cordoned and accepts pods again. The graceful sibling of
/// [`NodeFailure`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeDrain {
    /// Name of the node to drain.
    pub node: String,
    /// When the drain starts, seconds into the replay.
    pub drain_at_secs: u64,
    /// How long the node stays cordoned.
    pub down_for: SimDuration,
}

/// A node-crash injection: the node dies at `fail_at_secs` (losing every
/// pod, which re-queues) and registers back `down_for` later.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeFailure {
    /// Name of the node to crash.
    pub node: String,
    /// When the crash happens, seconds into the replay.
    pub fail_at_secs: u64,
    /// How long the node stays down.
    pub down_for: SimDuration,
}

/// Full configuration of one replay run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayConfig {
    /// The cluster to replay against.
    pub cluster: ClusterSpec,
    /// Orchestrator tunables (scheduler choice via
    /// `orchestrator.default_scheduler`).
    pub orchestrator: OrchestratorConfig,
    /// Whether the drivers enforce per-pod EPC limits (§V-D); the Fig. 11
    /// experiment runs both settings.
    pub enforce_limits: bool,
    /// Optional malicious tenants (Fig. 11).
    pub malicious: Option<MaliciousConfig>,
    /// Overrides every node's startup/paging cost model (ablations);
    /// `None` keeps [`CostModel::paper_defaults`].
    pub cost_model: Option<CostModel>,
    /// Injected node crashes (failure testing).
    pub failures: Vec<NodeFailure>,
    /// Periodic EPC rebalancing via live migration (§VIII); `None`
    /// disables it (the paper's baseline behaviour).
    pub rebalance: Option<RebalanceConfig>,
    /// Injected maintenance windows (drain → migrate away → uncordon).
    pub drains: Vec<NodeDrain>,
    /// Cluster + pod-group autoscaling; `None` (the default, and the
    /// paper's fixed-cluster world) replays against a static node set.
    #[serde(default)]
    pub autoscale: Option<AutoscaleConfig>,
    /// Fault injection on the probe→tsdb metrics pipeline (scrape drops,
    /// probe silences, delayed frames, shard write failures). A
    /// [`FaultPlan::is_noop`] plan makes the replay take the exact
    /// lossless code path.
    pub faults: FaultPlan,
    /// Hard cap on simulated time; replays that exceed it are marked
    /// timed out (guards against pathological configurations).
    pub max_sim_time: SimDuration,
    /// Name of the workload frontend to stream from (validated against
    /// `borg_trace::FrontendRegistry` by the consumer); `None` keeps
    /// whatever workload the caller materialised or streamed explicitly.
    #[serde(default)]
    pub frontend: Option<String>,
}

impl ReplayConfig {
    /// The paper's defaults: paper cluster, binpack default scheduler,
    /// limits enforced, no malicious tenants, 48 h cap.
    pub fn paper(seed: u64) -> Self {
        ReplayConfig {
            cluster: ClusterSpec::paper_cluster(),
            orchestrator: OrchestratorConfig::paper().with_seed(seed),
            enforce_limits: true,
            malicious: None,
            cost_model: None,
            failures: Vec::new(),
            rebalance: None,
            drains: Vec::new(),
            autoscale: None,
            faults: FaultPlan::none(),
            max_sim_time: SimDuration::from_hours(48),
            frontend: None,
        }
    }

    /// Streams the workload from the named registry frontend instead of
    /// a materialised trace.
    pub fn with_frontend(mut self, name: &str) -> Self {
        self.frontend = Some(name.to_string());
        self
    }

    /// Enables cluster + pod-group autoscaling.
    pub fn with_autoscale(mut self, autoscale: AutoscaleConfig) -> Self {
        self.autoscale = Some(autoscale);
        self
    }

    /// Injects metrics-pipeline faults.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Injects a node crash.
    pub fn with_failure(mut self, failure: NodeFailure) -> Self {
        self.failures.push(failure);
        self
    }

    /// Enables periodic EPC rebalancing via live migration.
    pub fn with_rebalance(mut self, rebalance: RebalanceConfig) -> Self {
        self.rebalance = Some(rebalance);
        self
    }

    /// Injects a maintenance window (drain + uncordon).
    pub fn with_drain(mut self, drain: NodeDrain) -> Self {
        self.drains.push(drain);
        self
    }

    /// Overrides the startup/paging cost model on every node.
    pub fn with_cost_model(mut self, model: CostModel) -> Self {
        self.cost_model = Some(model);
        self
    }

    /// Same configuration with a different default scheduler.
    pub fn with_scheduler(mut self, name: &str) -> Self {
        self.orchestrator = self.orchestrator.with_default_scheduler(name);
        self
    }

    /// Same configuration with a different cluster.
    pub fn with_cluster(mut self, cluster: ClusterSpec) -> Self {
        self.cluster = cluster;
        self
    }

    /// Adds the malicious tenants of Fig. 11.
    pub fn with_malicious(mut self, malicious: MaliciousConfig) -> Self {
        self.malicious = Some(malicious);
        self
    }

    /// Disables driver-side limit enforcement (Fig. 11's broken world).
    pub fn without_limits(mut self) -> Self {
        self.enforce_limits = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let config = ReplayConfig::paper(7)
            .with_scheduler(orchestrator::SGX_SPREAD)
            .without_limits()
            .with_malicious(MaliciousConfig::squatting(0.25));
        assert_eq!(
            config.orchestrator.default_scheduler,
            orchestrator::SGX_SPREAD
        );
        assert!(!config.enforce_limits);
        assert_eq!(config.malicious.unwrap().fraction, 0.25);
        assert_eq!(config.orchestrator.seed, 7);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn malicious_fraction_validated() {
        let _ = MaliciousConfig::squatting(1.5);
    }

    #[test]
    fn rebalance_and_drain_builders_compose() {
        let config = ReplayConfig::paper(3)
            .with_rebalance(RebalanceConfig::every(SimDuration::from_secs(30), 0.15))
            .with_drain(NodeDrain {
                node: "sgx-1".to_string(),
                drain_at_secs: 600,
                down_for: SimDuration::from_secs(300),
            });
        assert_eq!(config.rebalance.unwrap().threshold, 0.15);
        assert_eq!(config.drains.len(), 1);
        assert_eq!(config.drains[0].node, "sgx-1");
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn rebalance_threshold_validated() {
        let _ = RebalanceConfig::every(SimDuration::from_secs(60), 0.0);
    }

    #[test]
    fn frontend_builder_composes_and_defaults_to_none() {
        assert!(ReplayConfig::paper(2).frontend.is_none());
        let config = ReplayConfig::paper(2).with_frontend(borg_trace::frontend::ALIBABA_2017);
        assert_eq!(config.frontend.as_deref(), Some("alibaba-2017"));
    }

    #[test]
    fn fault_builder_composes_and_defaults_to_noop() {
        let clean = ReplayConfig::paper(1);
        assert!(clean.faults.is_noop());
        let faulty = ReplayConfig::paper(1).with_faults(
            FaultPlan::none()
                .with_seed(5)
                .with_scrape_drops(0.1)
                .with_delays(0.2, SimDuration::from_secs(30)),
        );
        assert!(!faulty.faults.is_noop());
        assert_eq!(faulty.faults.seed, 5);
        assert_eq!(faulty.faults.scrape_drop_rate, 0.1);
    }
}

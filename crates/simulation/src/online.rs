//! Online serving mode: a long-running orchestrator fed at wall-clock
//! speed.
//!
//! The replay engine is batch-shaped — it pulls a finite stream and
//! runs it to completion in virtual time. This module turns the same
//! [`TraceFrontend`] trait into a *service*: [`online_channel`] yields
//! a channel-backed [`OnlineFrontend`] plus an [`OnlineHandle`] any
//! thread can push submissions through, and [`OnlineServer::serve`]
//! drives the orchestrator against the wall clock, stamping each
//! submission with its arrival instant and running the scheduler and
//! probe loops on their configured periods in between. Sustained
//! pods-bound/sec (the `bench_online` metric) falls out of the
//! resulting [`OnlineReport`].

use std::collections::BTreeMap;
use std::sync::mpsc::{self, Receiver, SyncSender};
use std::time::Instant;

use borg_trace::frontend::{FrontendHint, TraceFrontend, WorkloadEvent};
use borg_trace::WorkloadJob;
use cluster::api::PodUid;
use des::{EventQueue, SimDuration, SimTime};
use orchestrator::{Orchestrator, PodOutcome};

use crate::config::ReplayConfig;
use crate::replay::pod_spec_for;

/// Capacity of the submission channel: deep enough that a benchmark
/// submitter never stalls on the server's scheduling passes, bounded so
/// a runaway producer exerts backpressure instead of exhausting memory.
const CHANNEL_DEPTH: usize = 4096;

/// Creates a connected submission channel: events pushed through the
/// [`OnlineHandle`] come out of the [`OnlineFrontend`]'s
/// `next_event` in order; dropping (or [`OnlineHandle::close`]-ing)
/// every handle ends the stream.
pub fn online_channel() -> (OnlineHandle, OnlineFrontend) {
    let (tx, rx) = mpsc::sync_channel(CHANNEL_DEPTH);
    (OnlineHandle { tx }, OnlineFrontend { rx })
}

/// The submitting side of an online session. Cloneable so many producer
/// threads can share one orchestrator.
#[derive(Debug, Clone)]
pub struct OnlineHandle {
    tx: SyncSender<WorkloadEvent>,
}

impl OnlineHandle {
    /// Submits a job. The job's `submit` field is ignored — the server
    /// stamps the wall-clock arrival instant. Returns `false` when the
    /// server is gone.
    pub fn submit(&self, job: WorkloadJob) -> bool {
        self.tx
            .send(WorkloadEvent::Submit {
                job,
                hostile: false,
            })
            .is_ok()
    }

    /// Ends the stream (equivalent to dropping the last handle).
    pub fn close(self) {}
}

/// A [`TraceFrontend`] whose events arrive over a channel instead of a
/// generator: `next_event` blocks until the next submission lands or
/// every [`OnlineHandle`] is gone.
#[derive(Debug)]
pub struct OnlineFrontend {
    rx: Receiver<WorkloadEvent>,
}

impl TraceFrontend for OnlineFrontend {
    fn next_event(&mut self) -> Option<WorkloadEvent> {
        self.rx.recv().ok()
    }

    fn hint(&self) -> FrontendHint {
        // Nothing is known up front: the stream is open-ended.
        FrontendHint {
            expected_jobs: 0,
            horizon: SimDuration::ZERO,
            service_groups: Vec::new(),
        }
    }
}

/// Internal events of the serving loop — the replay engine's periodic
/// machinery, minus everything batch-only (failures, drains, chaos).
#[derive(Debug, Clone, PartialEq, Eq)]
enum ServeEvent {
    SchedulerTick,
    ProbeTick,
    PodFinish(PodUid, u32),
}

/// What an online session did, plus the wall-clock cost of doing it.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineReport {
    /// Jobs accepted through the channel.
    pub submitted: usize,
    /// Pods the scheduler bound to a node (the throughput numerator;
    /// rebinds after eviction count again, denials never bind).
    pub bound: u64,
    /// Pods that completed their useful work.
    pub completed: usize,
    /// Pods killed at launch for exceeding their declared limits.
    pub denied: usize,
    /// Pods that could never fit the cluster.
    pub unschedulable: usize,
    /// Wall-clock seconds from `serve` start to the end of the drain.
    pub wall_secs: f64,
    /// Simulated instant of the last processed event.
    pub sim_end: SimTime,
}

impl OnlineReport {
    /// Sustained scheduler throughput: pods bound per wall-clock second
    /// over the whole session (ingest + drain).
    pub fn bound_per_sec(&self) -> f64 {
        if self.wall_secs <= 0.0 {
            return 0.0;
        }
        self.bound as f64 / self.wall_secs
    }
}

/// A long-running orchestrator accepting submissions at wall-clock
/// speed through the in-process API.
#[derive(Debug)]
pub struct OnlineServer {
    orch: Orchestrator,
    scheduler_period: SimDuration,
    probe_period: SimDuration,
}

impl OnlineServer {
    /// Builds the cluster and orchestrator from `config`. Online mode
    /// uses the cluster, orchestrator tunables and limit enforcement;
    /// batch-only injections (failures, drains, faults, autoscaling)
    /// are ignored.
    pub fn new(config: &ReplayConfig) -> Self {
        let mut orch = Orchestrator::new(config.cluster.clone(), config.orchestrator.clone());
        orch.set_enforce_limits(config.enforce_limits);
        OnlineServer {
            orch,
            scheduler_period: config.orchestrator.scheduler_period,
            probe_period: config.orchestrator.probe_period,
        }
    }

    /// Serves the frontend until its stream ends, then drains: arrival
    /// instants come from the wall clock (each submission is stamped
    /// with the elapsed time since `serve` began), and the scheduler
    /// and probe loops catch up to every arrival before it is
    /// submitted. After the last event the remaining work is finished
    /// at virtual speed. `GroupLoad` events are ignored — online mode
    /// has no pod-group controller.
    pub fn serve(mut self, frontend: &mut dyn TraceFrontend) -> OnlineReport {
        let epoch = Instant::now();
        let mut events: EventQueue<ServeEvent> = EventQueue::with_capacity(1024);
        events.schedule(SimTime::ZERO, ServeEvent::SchedulerTick);
        events.schedule(SimTime::ZERO, ServeEvent::ProbeTick);
        let mut generation: BTreeMap<PodUid, u32> = BTreeMap::new();
        let mut running = 0usize;
        let mut submitted = 0usize;
        let mut sim_end = SimTime::ZERO;

        while let Some(event) = frontend.next_event() {
            // Stamp the arrival and let the periodic machinery catch up
            // to it first, so a burst of arrivals cannot starve the
            // scheduling loop.
            let now = SimTime::ZERO + SimDuration::from_secs_f64(epoch.elapsed().as_secs_f64());
            self.advance_to(now, &mut events, &mut generation, &mut running);
            sim_end = now;
            if let WorkloadEvent::Submit { job, .. } = event {
                self.orch.submit(pod_spec_for(&job), now);
                submitted += 1;
            }
        }

        // The stream ended: finish the in-flight work at virtual speed.
        while running > 0 || !self.orch.queue().is_empty() {
            let Some(due) = events.peek_time() else { break };
            self.advance_to(due, &mut events, &mut generation, &mut running);
            sim_end = due;
        }

        let completed = self.count_outcome(|o| matches!(o, PodOutcome::Completed { .. }));
        let denied = self.count_outcome(|o| matches!(o, PodOutcome::Denied { .. }));
        let unschedulable = self.count_outcome(|o| *o == PodOutcome::Unschedulable);
        OnlineReport {
            submitted,
            bound: self.orch.bound_count(),
            completed,
            denied,
            unschedulable,
            wall_secs: epoch.elapsed().as_secs_f64(),
            sim_end,
        }
    }

    /// Processes every internal event due at or before `now`: scheduler
    /// and probe ticks re-arm on their periods (they never de-arm — the
    /// server is long-running), pod finishes complete their pods.
    fn advance_to(
        &mut self,
        now: SimTime,
        events: &mut EventQueue<ServeEvent>,
        generation: &mut BTreeMap<PodUid, u32>,
        running: &mut usize,
    ) {
        while events.peek_time().is_some_and(|at| at <= now) {
            let (at, event) = events.pop().expect("peeked");
            match event {
                ServeEvent::SchedulerTick => {
                    for outcome in self.orch.scheduler_pass(at) {
                        if outcome.report.started() {
                            *running += 1;
                            let runtime = outcome
                                .spec_duration
                                .mul_f64(outcome.slowdown_at_start.max(1.0));
                            let gen = *generation.entry(outcome.uid).or_insert(0);
                            let finish = at + outcome.report.startup_delay + runtime;
                            events.schedule(finish, ServeEvent::PodFinish(outcome.uid, gen));
                        }
                    }
                    events.schedule(at + self.scheduler_period, ServeEvent::SchedulerTick);
                }
                ServeEvent::ProbeTick => {
                    self.orch.probe_pass(at);
                    events.schedule(at + self.probe_period, ServeEvent::ProbeTick);
                }
                ServeEvent::PodFinish(uid, event_generation) => {
                    if generation.get(&uid).copied().unwrap_or(0) != event_generation {
                        continue;
                    }
                    *running -= 1;
                    self.orch
                        .complete_pod(uid, at)
                        .expect("finish events only exist for running pods");
                }
            }
        }
    }

    fn count_outcome(&self, pred: impl Fn(&PodOutcome) -> bool) -> usize {
        self.orch
            .records()
            .iter()
            .filter(|(_, r)| pred(&r.outcome))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use borg_trace::{GeneratorConfig, Workload, WorkloadParams};

    fn small_jobs(seed: u64) -> Vec<WorkloadJob> {
        let trace = GeneratorConfig::small(seed).generate_sampled(10);
        Workload::materialize(&trace, &WorkloadParams::paper(0.5, seed))
            .jobs()
            .to_vec()
    }

    #[test]
    fn online_session_binds_and_completes_submissions() {
        let jobs = small_jobs(31);
        let expected = jobs.len();
        let (handle, mut frontend) = online_channel();
        let submitter = std::thread::spawn(move || {
            for job in jobs {
                assert!(handle.submit(job));
            }
        });
        let server = OnlineServer::new(&ReplayConfig::paper(31));
        let report = server.serve(&mut frontend);
        submitter.join().unwrap();
        assert_eq!(report.submitted, expected);
        // Every submission reaches a terminal state.
        assert_eq!(
            report.completed + report.denied + report.unschedulable,
            expected
        );
        // Everything that was not denied at launch was bound at least
        // once.
        assert!(report.bound as usize >= expected - report.denied - report.unschedulable);
        assert!(report.wall_secs > 0.0);
        assert!(report.bound_per_sec() > 0.0);
    }

    #[test]
    fn closed_channel_ends_an_empty_session() {
        let (handle, mut frontend) = online_channel();
        handle.close();
        let report = OnlineServer::new(&ReplayConfig::paper(1)).serve(&mut frontend);
        assert_eq!(report.submitted, 0);
        assert_eq!(report.bound, 0);
        assert_eq!(report.bound_per_sec(), 0.0);
    }

    #[test]
    fn group_load_events_are_ignored_online() {
        let (handle, mut frontend) = online_channel();
        handle
            .tx
            .send(WorkloadEvent::GroupLoad {
                at: SimTime::ZERO,
                group: "web".to_string(),
                load: 100.0,
            })
            .unwrap();
        drop(handle);
        let report = OnlineServer::new(&ReplayConfig::paper(1)).serve(&mut frontend);
        assert_eq!(report.submitted, 0);
    }
}

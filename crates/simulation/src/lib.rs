//! Discrete-event replay of Borg-derived workloads against the SGX-aware
//! orchestrator.
//!
//! This crate glues the whole stack together: it turns a
//! [`borg_trace::Workload`] into pod submissions, drives the
//! [`orchestrator::Orchestrator`]'s scheduling and probe passes on their
//! configured periods, executes container startup against the simulated
//! SGX driver, and collects everything the paper's evaluation section
//! measures — waiting times (Figs. 8, 9, 11), turnaround times (Fig. 10)
//! and the pending-queue series (Fig. 7).
//!
//! # Examples
//!
//! ```
//! use borg_trace::{GeneratorConfig, Workload, WorkloadParams};
//! use simulation::{ReplayConfig, replay};
//!
//! let trace = GeneratorConfig::small(1).generate();
//! let workload = Workload::materialize(&trace, &WorkloadParams::paper(0.5, 1));
//! let result = replay(&workload, &ReplayConfig::paper(1));
//! assert_eq!(result.runs().len(), workload.len());
//! assert!(result.completed_count() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod chaos;
pub mod conformance;
pub mod online;
pub mod sweep;

mod config;
mod replay;

pub use chaos::{FaultInjector, FaultPlan, FaultStats, FrameFate, ProbeSilence};
pub use config::{
    AutoscaleConfig, MaliciousConfig, NodeDrain, NodeFailure, RebalanceConfig, ReplayConfig,
};
pub use conformance::{TraceHarness, TraceOp};
pub use online::{online_channel, OnlineFrontend, OnlineHandle, OnlineReport, OnlineServer};
pub use replay::{replay, replay_stream, JobRun, ReplayResult, DEFAULT_GROUP_AUTOSCALE_PERIOD};
pub use sweep::{SweepJob, SweepProgress};

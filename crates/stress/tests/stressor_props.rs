//! Property-based tests for the workload models.

use proptest::prelude::*;

use borg_trace::{JobId, JobKind, WorkloadJob};
use des::{SimDuration, SimTime};
use sgx_sim::units::ByteSize;
use stress::Stressor;

fn arbitrary_job(kind: JobKind) -> impl Strategy<Value = WorkloadJob> {
    (1u64..100_000, 1u64..100_000, 1u64..300).prop_map(move |(req_kib, use_kib, dur)| WorkloadJob {
        id: JobId::new(1),
        submit: SimTime::ZERO,
        duration: SimDuration::from_secs(dur),
        kind,
        mem_request: ByteSize::from_kib(req_kib),
        mem_usage: ByteSize::from_kib(use_kib),
    })
}

proptest! {
    /// A job's stressor allocates exactly its actual usage, in the memory
    /// kind matching the job kind.
    #[test]
    fn job_stressors_allocate_actual_usage_sgx(job in arbitrary_job(JobKind::Sgx)) {
        let plan = Stressor::for_job(&job).plan();
        prop_assert!(plan.requires_sgx);
        prop_assert_eq!(plan.epc_allocation, job.mem_usage.to_epc_pages_ceil());
        prop_assert_eq!(plan.standard_allocation, ByteSize::ZERO);
        prop_assert!(Stressor::for_job(&job).image().bundles_psw());
    }

    #[test]
    fn job_stressors_allocate_actual_usage_standard(job in arbitrary_job(JobKind::Standard)) {
        let plan = Stressor::for_job(&job).plan();
        prop_assert!(!plan.requires_sgx);
        prop_assert_eq!(plan.standard_allocation, job.mem_usage);
        prop_assert!(plan.epc_allocation.is_zero());
    }

    /// The malicious stressor's footprint scales linearly with the node's
    /// EPC while its declared request stays a single page.
    #[test]
    fn malicious_footprint_scales_with_node(fraction in 0.01f64..1.0, node_mib in 1u64..512) {
        let stressor = Stressor::malicious(fraction);
        let node = ByteSize::from_mib(node_mib);
        let plan = stressor.plan_on(node);
        let expected = node.mul_f64(fraction).to_epc_pages_ceil();
        prop_assert_eq!(plan.epc_allocation, expected);
        prop_assert!(plan.requires_sgx);
        // Page rounding never inflates by more than one page.
        let exact_bytes = node.as_bytes() as f64 * fraction;
        prop_assert!(plan.epc_allocation.to_bytes().as_bytes() as f64 >= exact_bytes - 1.0);
        prop_assert!(
            plan.epc_allocation.to_bytes().as_bytes() as f64 <= exact_bytes + 4096.0 + 1.0
        );
    }
}

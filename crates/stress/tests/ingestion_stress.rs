//! Threaded ingestion stress test (run by CI): hammers the sharded
//! concurrent tsdb with the full probe topology — per-node producer
//! threads shipping [`PointBatch`] frames over bounded crossbeam
//! channels to per-shard writer threads — while reader threads run the
//! Listing-1 query concurrently. Afterwards the store must be
//! bit-identical to a sequential oracle fed the same samples.
//!
//! A second variant runs the same topology through a deterministic
//! fault schedule — dropped frames plus delayed frames that arrive out
//! of time order — and checks the store still matches the oracle.

use std::sync::atomic::{AtomicBool, Ordering};

use des::{SimDuration, SimTime};
use tsdb::{Aggregate, Database, PointBatch, Predicate, Select, ShardedDatabase, TimeBound};

const NODES: usize = 20;
const PODS_PER_NODE: usize = 8;
const PASSES: usize = 60;
const WRITERS: usize = 4;
const SHARDS: usize = 4;

/// The frame node `node` emits at scrape pass `pass` — deterministic, so
/// the concurrent run and the sequential oracle agree exactly.
fn frame_for(node: usize, pass: usize) -> PointBatch {
    let now = SimTime::from_secs(10 * (pass as u64 + 1));
    let mut batch = PointBatch::new("sgx/epc", "pod_name", now)
        .with_shared_tag("nodename", format!("node-{node:02}"));
    for pod in 0..PODS_PER_NODE {
        let value = (node * 1000 + pod * 10 + pass % 7 + 1) as f64;
        batch.push(format!("pod-{pod}"), value);
    }
    batch
}

fn listing1() -> Select {
    let per_pod = Select::from_measurement("sgx/epc")
        .aggregate(Aggregate::Max)
        .filter(Predicate::ValueNe(0.0))
        .filter(Predicate::TimeAtLeast(TimeBound::SinceNowMinus(
            SimDuration::from_secs(25),
        )))
        .group_by(["pod_name", "nodename"]);
    Select::from_subquery(per_pod)
        .aggregate(Aggregate::Sum)
        .group_by(["nodename"])
}

#[test]
fn threaded_batch_ingestion_survives_contention_and_matches_oracle() {
    let db = ShardedDatabase::new(SHARDS);
    let select = listing1();
    let done = AtomicBool::new(false);

    crossbeam::thread::scope(|outer| {
        // Reader threads: run the Listing-1 query while writes race. Any
        // intermediate answer is fine; the query must never panic and
        // must only ever see at most one group per node.
        for _ in 0..2 {
            let db = &db;
            let select = &select;
            let done = &done;
            outer.spawn(move || {
                while !done.load(Ordering::Relaxed) {
                    let now = SimTime::from_secs(10 * PASSES as u64);
                    let rows = db.query(select, now);
                    assert!(rows.len() <= NODES, "more groups than nodes");
                }
            });
        }

        // The inner scope joins every producer and writer before it
        // returns, after which the readers are told to stop.
        crossbeam::thread::scope(|scope| {
            // Writer threads: each drains one channel into the store.
            let mut senders = Vec::with_capacity(WRITERS);
            for _ in 0..WRITERS {
                let (tx, rx) = crossbeam::channel::bounded::<PointBatch>(8);
                senders.push(tx);
                let db = &db;
                scope.spawn(move || {
                    while let Ok(batch) = rx.recv() {
                        db.insert_batch(&batch);
                    }
                });
            }

            // Producer threads: one per stride of nodes, emitting every
            // pass's frame for its nodes. A node's frames always go to
            // the same writer so per-series sample order is preserved.
            for offset in 0..WRITERS {
                let senders = senders.clone();
                scope.spawn(move || {
                    for pass in 0..PASSES {
                        for node in (offset..NODES).step_by(WRITERS) {
                            let writer = node % WRITERS;
                            senders[writer]
                                .send(frame_for(node, pass))
                                .expect("writer alive");
                        }
                    }
                });
            }

            // Writers exit when every producer hangs up.
            drop(senders);
        });

        done.store(true, Ordering::Relaxed);
    });

    // Sequential oracle: same frames, per-node order preserved.
    let mut oracle = Database::new();
    for pass in 0..PASSES {
        for node in 0..NODES {
            oracle.insert_batch(&frame_for(node, pass));
        }
    }

    assert_eq!(
        db.points_inserted(),
        (NODES * PODS_PER_NODE * PASSES) as u64
    );
    assert_eq!(db.points_inserted(), oracle.points_inserted());
    assert_eq!(db.out_of_order_inserts(), oracle.out_of_order_inserts());
    assert_eq!(db.snapshot(), oracle.snapshot());

    let now = SimTime::from_secs(10 * PASSES as u64);
    assert_eq!(db.query(&select, now), oracle.query(&select, now));

    // Retention under a fresh concurrent pass: evict everything older
    // than 100 s from both stores and stay identical.
    let keep = SimDuration::from_secs(100);
    assert_eq!(
        db.enforce_retention(now, keep),
        oracle.enforce_retention(now, keep)
    );
    assert_eq!(db.snapshot(), oracle.snapshot());
}

/// What the fault schedule does to node `node`'s pass-`pass` frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fate {
    Deliver,
    Dropped,
    /// Held back three scrape passes, then delivered — out of time order
    /// relative to the frames scraped in between.
    Delayed,
}

/// Pure-function fault schedule: deterministic (no RNG, no state), so
/// the concurrent run and the sequential oracle see the exact same
/// drops and delays. Roughly 10 % of frames drop and 20 % delay.
fn fate_for(node: usize, pass: usize) -> Fate {
    let h = node.wrapping_mul(2_654_435_761) ^ pass.wrapping_mul(40_503);
    match h % 10 {
        0 => Fate::Dropped,
        1 | 2 => Fate::Delayed,
        _ => Fate::Deliver,
    }
}

/// The order node `node`'s surviving frames reach the store: delayed
/// frames are re-ranked three passes late, everything else keeps its
/// scrape rank; the sort is stable, so equal ranks stay in scrape order.
fn delivery_order(node: usize) -> Vec<usize> {
    let mut ranked: Vec<(usize, usize)> = (0..PASSES)
        .filter_map(|pass| match fate_for(node, pass) {
            Fate::Dropped => None,
            Fate::Deliver => Some((pass, pass)),
            Fate::Delayed => Some((pass + 3, pass)),
        })
        .collect();
    ranked.sort_by_key(|&(rank, _)| rank);
    ranked.into_iter().map(|(_, pass)| pass).collect()
}

#[test]
fn faulted_ingestion_with_delayed_frames_matches_oracle() {
    let db = ShardedDatabase::new(SHARDS);
    let select = listing1();

    crossbeam::thread::scope(|scope| {
        let mut senders = Vec::with_capacity(WRITERS);
        for _ in 0..WRITERS {
            let (tx, rx) = crossbeam::channel::bounded::<PointBatch>(8);
            senders.push(tx);
            let db = &db;
            scope.spawn(move || {
                while let Ok(batch) = rx.recv() {
                    db.insert_batch(&batch);
                }
            });
        }

        // Producers ship each of their nodes' frames in delivery order
        // (drops omitted, delays re-ranked); a node sticks to one writer
        // so its per-series delivery order is preserved end to end.
        for offset in 0..WRITERS {
            let senders = senders.clone();
            scope.spawn(move || {
                for node in (offset..NODES).step_by(WRITERS) {
                    let writer = node % WRITERS;
                    for pass in delivery_order(node) {
                        senders[writer]
                            .send(frame_for(node, pass))
                            .expect("writer alive");
                    }
                }
            });
        }

        drop(senders);
    });

    // Sequential oracle: same surviving frames, same per-node order.
    let mut oracle = Database::new();
    let mut delivered = 0u64;
    let mut dropped = 0u64;
    let mut delayed = 0u64;
    for node in 0..NODES {
        for pass in delivery_order(node) {
            oracle.insert_batch(&frame_for(node, pass));
            delivered += 1;
        }
        for pass in 0..PASSES {
            match fate_for(node, pass) {
                Fate::Dropped => dropped += 1,
                Fate::Delayed => delayed += 1,
                Fate::Deliver => {}
            }
        }
    }
    assert!(dropped > 0, "schedule must drop frames");
    assert!(delayed > 0, "schedule must delay frames");
    assert_eq!(delivered, (NODES * PASSES) as u64 - dropped);

    assert_eq!(db.points_inserted(), delivered * PODS_PER_NODE as u64);
    assert_eq!(db.points_inserted(), oracle.points_inserted());
    // Late frames really did land out of time order — and exactly as
    // often concurrently as sequentially.
    assert!(oracle.out_of_order_inserts() > 0, "no out-of-order inserts");
    assert_eq!(db.out_of_order_inserts(), oracle.out_of_order_inserts());
    assert_eq!(db.snapshot(), oracle.snapshot());

    let now = SimTime::from_secs(10 * PASSES as u64);
    assert_eq!(db.query(&select, now), oracle.query(&select, now));

    let keep = SimDuration::from_secs(100);
    assert_eq!(
        db.enforce_retention(now, keep),
        oracle.enforce_retention(now, keep)
    );
    assert_eq!(db.snapshot(), oracle.snapshot());
}

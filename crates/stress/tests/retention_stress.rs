//! Retention-during-ingest stress test (run by CI): the full probe
//! topology — producer threads shipping per-node [`PointBatch`] frame
//! runs to writer threads that coalesce them in writer-local buffers and
//! flush through `insert_batches` — races a retention thread firing
//! bounded trim ticks the whole time. Every racing cutoff stays at or
//! below the final cutoff, so whichever samples the racing trims catch,
//! the closing trim finishes the job: the surviving window must be
//! bit-identical to a sequential ingest-everything-then-trim-once
//! oracle.
//!
//! The test also pins the lock-free hot path: once the first wave has
//! registered every series, delivering a second wave must not take a
//! single whole-shard exclusive lock.

use des::{SimDuration, SimTime};
use tsdb::{Aggregate, Database, PointBatch, Predicate, Select, ShardedDatabase, TimeBound};

const NODES: usize = 20;
const PODS_PER_NODE: usize = 8;
const PASSES: usize = 40;
const WRITERS: usize = 4;
const SHARDS: usize = 4;
/// Frames a writer buffers locally before flushing them in one
/// `insert_batches` call — the orchestrator's coalescing flush size.
const FLUSH_FRAMES: usize = 32;
/// Retention ticks the racing thread fires (bounded, so CI terminates).
const RETENTION_TICKS: usize = 25;
/// The closing retention window. Racing ticks keep at least this much,
/// so their cutoffs never pass the final one.
const FINAL_KEEP_SECS: u64 = 120;

/// The frame node `node` emits at scrape pass `pass` — deterministic,
/// and monotone in time per series, so the concurrent run and the
/// sequential oracle agree exactly whatever the trim interleaving.
fn frame_for(node: usize, pass: usize) -> PointBatch {
    let now = SimTime::from_secs(10 * (pass as u64 + 1));
    let mut batch = PointBatch::new("sgx/epc", "pod_name", now)
        .with_shared_tag("nodename", format!("node-{node:02}"));
    for pod in 0..PODS_PER_NODE {
        let value = (node * 1000 + pod * 10 + pass % 7 + 1) as f64;
        batch.push(format!("pod-{pod}"), value);
    }
    batch
}

fn listing1() -> Select {
    let per_pod = Select::from_measurement("sgx/epc")
        .aggregate(Aggregate::Max)
        .filter(Predicate::ValueNe(0.0))
        .filter(Predicate::TimeAtLeast(TimeBound::SinceNowMinus(
            SimDuration::from_secs(25),
        )))
        .group_by(["pod_name", "nodename"]);
    Select::from_subquery(per_pod)
        .aggregate(Aggregate::Sum)
        .group_by(["nodename"])
}

/// Delivers every pass's frames through the buffered writer topology:
/// producers ship each node's frame to the node's writer, writers flush
/// writer-local buffers through `insert_batches`. Per-node frame order —
/// and hence per-series sample order — is preserved end to end.
fn deliver_all_passes(db: &ShardedDatabase, first_pass: usize, passes: usize) {
    crossbeam::thread::scope(|scope| {
        let mut senders = Vec::with_capacity(WRITERS);
        for _ in 0..WRITERS {
            let (tx, rx) = crossbeam::channel::bounded::<PointBatch>(8);
            senders.push(tx);
            scope.spawn(move || {
                let mut buffer: Vec<PointBatch> = Vec::with_capacity(FLUSH_FRAMES);
                while let Ok(batch) = rx.recv() {
                    buffer.push(batch);
                    if buffer.len() >= FLUSH_FRAMES {
                        db.insert_batches(&buffer);
                        buffer.clear();
                    }
                }
                db.insert_batches(&buffer);
            });
        }

        for offset in 0..WRITERS {
            let senders = senders.clone();
            scope.spawn(move || {
                for pass in first_pass..first_pass + passes {
                    for node in (offset..NODES).step_by(WRITERS) {
                        let writer = node % WRITERS;
                        senders[writer]
                            .send(frame_for(node, pass))
                            .expect("writer alive");
                    }
                }
            });
        }

        drop(senders);
    });
}

#[test]
fn retention_racing_buffered_ingestion_matches_ingest_then_trim_oracle() {
    let db = ShardedDatabase::new(SHARDS);
    let now = SimTime::from_secs(10 * PASSES as u64);
    let final_keep = SimDuration::from_secs(FINAL_KEEP_SECS);

    crossbeam::thread::scope(|outer| {
        // Retention thread: bounded trim ticks racing the whole ingest,
        // windows varying but never tighter than the closing one.
        let db_ref = &db;
        outer.spawn(move || {
            for tick in 0..RETENTION_TICKS {
                let keep = FINAL_KEEP_SECS + (tick as u64 * 37) % 300;
                db_ref.enforce_retention(now, SimDuration::from_secs(keep));
            }
        });

        deliver_all_passes(db_ref, 0, PASSES);
    });
    // Closing trim: finishes whatever the racing ticks left behind.
    db.enforce_retention(now, final_keep);

    // Sequential oracle: same frames in per-node pass order, one trim.
    let mut oracle = Database::new();
    for pass in 0..PASSES {
        for node in 0..NODES {
            oracle.insert_batch(&frame_for(node, pass));
        }
    }
    oracle.enforce_retention(now, final_keep);
    assert!(oracle.points_evicted() > 0, "trim must bite");
    assert!(oracle.point_count() > 0, "a window must survive");

    assert_eq!(
        db.points_inserted(),
        (NODES * PODS_PER_NODE * PASSES) as u64
    );
    assert_eq!(db.points_inserted(), oracle.points_inserted());
    assert_eq!(db.points_evicted(), oracle.points_evicted());
    assert_eq!(db.out_of_order_inserts(), oracle.out_of_order_inserts());
    assert_eq!(db.point_count(), oracle.point_count());
    assert_eq!(db.snapshot(), oracle.snapshot());

    let select = listing1();
    assert_eq!(db.query(&select, now), oracle.query(&select, now));
    assert_eq!(
        db.query_full_scan(&select, now),
        oracle.query_full_scan(&select, now)
    );

    // Lock-free hot path: the surviving window means every series is
    // still registered, so a second wave of newer frames must append
    // without one whole-shard exclusive lock acquisition.
    let creations = db.append_write_lock_acquisitions();
    assert!(creations > 0, "first wave must grow the registry");
    deliver_all_passes(&db, PASSES, PASSES);
    assert_eq!(db.append_write_lock_acquisitions(), creations);
}

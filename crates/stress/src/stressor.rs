//! Stressor behaviour models.

use serde::{Deserialize, Serialize};

use borg_trace::{JobKind, WorkloadJob};
use sgx_sim::units::{ByteSize, EpcPages};

use crate::image::ContainerImage;

/// What a container's stressor does once it starts.
///
/// The three variants mirror the binaries used in the paper's evaluation:
/// STRESS-NG's virtual-memory stressor, STRESS-SGX's EPC stressor, and the
/// malicious container of §VI-F (declares one EPC page, maps a large slice
/// of the node's EPC).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Stressor {
    /// STRESS-NG `--vm`: allocates ordinary memory.
    VirtualMemory {
        /// Bytes the stressor maps and continuously touches.
        bytes: ByteSize,
    },
    /// STRESS-SGX EPC stressor: allocates enclave memory.
    Epc {
        /// Bytes of enclave memory (committed at `EINIT` under SGX1).
        bytes: ByteSize,
    },
    /// The Fig. 11 malicious container: declares `declared` pages in its
    /// pod spec but actually maps `fraction` of the node's usable EPC.
    MaliciousEpc {
        /// Pages advertised in the pod specification (the paper uses 1).
        declared: EpcPages,
        /// Fraction of the node's usable EPC actually mapped (0.25 / 0.5
        /// in the paper's runs).
        fraction: f64,
    },
}

impl Stressor {
    /// A virtual-memory stressor of the given size.
    pub fn virtual_memory(bytes: ByteSize) -> Self {
        Stressor::VirtualMemory { bytes }
    }

    /// An EPC stressor of the given size.
    pub fn epc(bytes: ByteSize) -> Self {
        Stressor::Epc { bytes }
    }

    /// The paper's malicious configuration: declare 1 page, use `fraction`
    /// of the node's EPC.
    ///
    /// # Panics
    ///
    /// Panics unless `fraction` lies in `(0, 1]`.
    pub fn malicious(fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "malicious fraction must be in (0, 1], got {fraction}"
        );
        Stressor::MaliciousEpc {
            declared: EpcPages::ONE,
            fraction,
        }
    }

    /// The stressor a trace job materialises to (§VI-C): standard jobs run
    /// the VM stressor sized by their actual usage, SGX jobs the EPC
    /// stressor.
    pub fn for_job(job: &WorkloadJob) -> Self {
        match job.kind {
            JobKind::Standard => Stressor::VirtualMemory {
                bytes: job.mem_usage,
            },
            JobKind::Sgx => Stressor::Epc {
                bytes: job.mem_usage,
            },
        }
    }

    /// The container image the stressor runs in.
    pub fn image(&self) -> ContainerImage {
        match self {
            Stressor::VirtualMemory { .. } => ContainerImage::stress_ng(),
            Stressor::Epc { .. } | Stressor::MaliciousEpc { .. } => ContainerImage::sgx_base(),
        }
    }

    /// Resolves the stressor into a concrete allocation plan on a node
    /// with `node_usable_epc` of usable enclave memory.
    pub fn plan_on(&self, node_usable_epc: ByteSize) -> StressPlan {
        match *self {
            Stressor::VirtualMemory { bytes } => StressPlan {
                standard_allocation: bytes,
                epc_allocation: EpcPages::ZERO,
                requires_sgx: false,
            },
            Stressor::Epc { bytes } => StressPlan {
                standard_allocation: ByteSize::ZERO,
                epc_allocation: bytes.to_epc_pages_ceil(),
                requires_sgx: true,
            },
            Stressor::MaliciousEpc { fraction, .. } => StressPlan {
                standard_allocation: ByteSize::ZERO,
                epc_allocation: node_usable_epc.mul_f64(fraction).to_epc_pages_ceil(),
                requires_sgx: true,
            },
        }
    }

    /// The allocation plan on the paper's default hardware (93.5 MiB of
    /// usable EPC).
    pub fn plan(&self) -> StressPlan {
        self.plan_on(sgx_sim::units::USABLE_EPC)
    }
}

/// A resolved allocation plan: what the container will actually map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StressPlan {
    /// Ordinary memory the container maps.
    pub standard_allocation: ByteSize,
    /// EPC pages the container commits inside its enclave.
    pub epc_allocation: EpcPages,
    /// Whether the container needs `/dev/isgx` mounted (an SGX node).
    pub requires_sgx: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use borg_trace::JobId;
    use des::{SimDuration, SimTime};
    use sgx_sim::units::USABLE_EPC;

    fn workload_job(kind: JobKind) -> WorkloadJob {
        WorkloadJob {
            id: JobId::new(1),
            submit: SimTime::ZERO,
            duration: SimDuration::from_secs(10),
            kind,
            mem_request: ByteSize::from_mib(10),
            mem_usage: ByteSize::from_mib(12),
        }
    }

    #[test]
    fn vm_stressor_plan() {
        let plan = Stressor::virtual_memory(ByteSize::from_mib(64)).plan();
        assert_eq!(plan.standard_allocation, ByteSize::from_mib(64));
        assert_eq!(plan.epc_allocation, EpcPages::ZERO);
        assert!(!plan.requires_sgx);
    }

    #[test]
    fn epc_stressor_plan() {
        let plan = Stressor::epc(ByteSize::from_mib(10)).plan();
        assert_eq!(plan.epc_allocation, EpcPages::from_mib_ceil(10));
        assert_eq!(plan.standard_allocation, ByteSize::ZERO);
        assert!(plan.requires_sgx);
    }

    #[test]
    fn malicious_plan_scales_with_node_epc() {
        let stressor = Stressor::malicious(0.5);
        let plan = stressor.plan_on(USABLE_EPC);
        assert_eq!(
            plan.epc_allocation,
            USABLE_EPC.mul_f64(0.5).to_epc_pages_ceil()
        );
        let smaller = stressor.plan_on(ByteSize::from_mib(32));
        assert_eq!(
            smaller.epc_allocation,
            ByteSize::from_mib(16).to_epc_pages_ceil()
        );
        // ... while the declared request stays one page.
        let Stressor::MaliciousEpc { declared, .. } = stressor else {
            unreachable!()
        };
        assert_eq!(declared, EpcPages::ONE);
    }

    #[test]
    fn job_materialisation_follows_kind() {
        let std_job = workload_job(JobKind::Standard);
        let plan = Stressor::for_job(&std_job).plan();
        assert_eq!(plan.standard_allocation, ByteSize::from_mib(12)); // actual usage
        assert!(!plan.requires_sgx);

        let sgx_job = workload_job(JobKind::Sgx);
        let s = Stressor::for_job(&sgx_job);
        assert_eq!(s.image(), ContainerImage::sgx_base());
        let plan = s.plan();
        assert_eq!(
            plan.epc_allocation,
            ByteSize::from_mib(12).to_epc_pages_ceil()
        );
        assert!(plan.requires_sgx);
    }

    #[test]
    fn images_match_stressors() {
        assert!(!Stressor::virtual_memory(ByteSize::ZERO)
            .image()
            .bundles_psw());
        assert!(Stressor::malicious(0.25).image().bundles_psw());
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn malicious_fraction_validated() {
        let _ = Stressor::malicious(0.0);
    }
}

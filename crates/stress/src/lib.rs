//! STRESS-SGX workload models (§VI-C of the paper).
//!
//! The paper materialises Borg trace records into containers running
//! STRESS-SGX — a fork of STRESS-NG with an EPC stressor. Standard jobs
//! run the original virtual-memory stressor; SGX jobs run the EPC
//! stressor; and the Fig. 11 experiment adds *malicious* containers that
//! declare a 1-page EPC limit but map up to half of a node's EPC.
//!
//! This crate models what those binaries *do to memory*: how much a
//! container declares, how much it actually allocates, and inside which
//! kind of memory. The cluster simulation executes these plans against the
//! simulated SGX driver.
//!
//! # Examples
//!
//! ```
//! use sgx_sim::units::{ByteSize, EpcPages};
//! use stress::{StressPlan, Stressor};
//!
//! // An EPC stressor allocating 16 MiB inside an enclave.
//! let stressor = Stressor::epc(ByteSize::from_mib(16));
//! let plan = stressor.plan();
//! assert_eq!(plan.epc_allocation, ByteSize::from_mib(16).to_epc_pages_ceil());
//! assert!(plan.requires_sgx);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod image;
mod stressor;

pub use image::{ContainerImage, SGX_BASE_IMAGE_NAME};
pub use stressor::{StressPlan, Stressor};

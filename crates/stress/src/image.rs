//! Container image metadata (§V-F).
//!
//! SGX applications built with the Intel SDK depend on the Platform
//! Software (PSW) and its AESM service. Because the paper keeps containers
//! unprivileged, every SGX container ships its own PSW — that is what the
//! `sebvaucher/sgx-base` image provides, and why SGX containers pay the
//! ≈100 ms AESM startup cost on every launch.

use serde::{Deserialize, Serialize};

use sgx_sim::units::ByteSize;

/// Name of the paper's public base image for SGX applications.
pub const SGX_BASE_IMAGE_NAME: &str = "sebvaucher/sgx-base";

/// Metadata of a container image referenced by a pod spec.
///
/// # Examples
///
/// ```
/// use stress::ContainerImage;
///
/// let image = ContainerImage::sgx_base();
/// assert!(image.bundles_psw());
/// let plain = ContainerImage::new("stress-ng", false);
/// assert!(!plain.bundles_psw());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ContainerImage {
    name: String,
    bundles_psw: bool,
}

impl ContainerImage {
    /// Creates an image record.
    ///
    /// # Panics
    ///
    /// Panics if `name` is empty.
    pub fn new(name: impl Into<String>, bundles_psw: bool) -> Self {
        let name = name.into();
        assert!(!name.is_empty(), "image name must not be empty");
        ContainerImage { name, bundles_psw }
    }

    /// The paper's SGX base image: Intel SDK runtime plus PSW/AESM.
    pub fn sgx_base() -> Self {
        ContainerImage::new(SGX_BASE_IMAGE_NAME, true)
    }

    /// A plain STRESS-NG image for standard jobs.
    pub fn stress_ng() -> Self {
        ContainerImage::new("stress-ng", false)
    }

    /// The image name (registry reference).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether the image ships its own PSW/AESM instance. Containers built
    /// on such images pay the AESM startup delay measured in Fig. 6.
    pub fn bundles_psw(&self) -> bool {
        self.bundles_psw
    }

    /// Nominal on-disk size used when modelling registry pulls.
    pub fn nominal_size(&self) -> ByteSize {
        if self.bundles_psw {
            // SDK + PSW layers on top of the base OS layer.
            ByteSize::from_mib(420)
        } else {
            ByteSize::from_mib(180)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let sgx = ContainerImage::sgx_base();
        assert_eq!(sgx.name(), SGX_BASE_IMAGE_NAME);
        assert!(sgx.bundles_psw());
        assert!(sgx.nominal_size() > ContainerImage::stress_ng().nominal_size());
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_name_rejected() {
        let _ = ContainerImage::new("", false);
    }
}

//! Keeps the README's scheduler table generated from the registry.
//!
//! The table between the `registry-table` markers in `README.md` must be
//! exactly what [`PolicyRegistry::markdown_table`] renders — the registry
//! is the single source of truth for policy names and pipeline shapes,
//! and the docs must not drift from it.

use orchestrator::PolicyRegistry;

#[test]
fn readme_scheduler_table_matches_the_registry() {
    let readme_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md");
    let readme = std::fs::read_to_string(readme_path).expect("README.md is readable");

    let begin = "<!-- registry-table:begin -->\n";
    let end = "<!-- registry-table:end -->";
    let start = readme
        .find(begin)
        .expect("README.md contains the registry-table begin marker")
        + begin.len();
    let stop = readme[start..]
        .find(end)
        .map(|i| start + i)
        .expect("README.md contains the registry-table end marker");

    let expected = PolicyRegistry::builtin().markdown_table();
    assert_eq!(
        &readme[start..stop],
        expected,
        "README scheduler table is stale — regenerate it with \
         `cargo run -p sgx-orchestrator --bin exp_chaos -- --list-policies`"
    );
}

//! Keeps the documented registry tables generated from the registries.
//!
//! The table between the `registry-table` markers in `README.md` must be
//! exactly what [`PolicyRegistry::markdown_table`] renders, and the table
//! between the `frontend-table` markers in `DESIGN.md` exactly what
//! [`FrontendRegistry::markdown_table`] renders — the registries are the
//! single source of truth for names and shapes, and the docs must not
//! drift from them.

use borg_trace::FrontendRegistry;
use orchestrator::PolicyRegistry;

/// The slice of `text` between `<!-- {marker}:begin -->` and
/// `<!-- {marker}:end -->`.
fn between_markers<'a>(text: &'a str, file: &str, marker: &str) -> &'a str {
    let begin = format!("<!-- {marker}:begin -->\n");
    let end = format!("<!-- {marker}:end -->");
    let start = text
        .find(&begin)
        .unwrap_or_else(|| panic!("{file} contains the {marker} begin marker"))
        + begin.len();
    let stop = text[start..]
        .find(&end)
        .map(|i| start + i)
        .unwrap_or_else(|| panic!("{file} contains the {marker} end marker"));
    &text[start..stop]
}

#[test]
fn readme_scheduler_table_matches_the_registry() {
    let readme_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md");
    let readme = std::fs::read_to_string(readme_path).expect("README.md is readable");

    let expected = PolicyRegistry::builtin().markdown_table();
    assert_eq!(
        between_markers(&readme, "README.md", "registry-table"),
        expected,
        "README scheduler table is stale — regenerate it with \
         `cargo run -p sgx-orchestrator --bin exp_chaos -- --list-policies`"
    );
}

#[test]
fn design_frontend_table_matches_the_registry() {
    let design_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../DESIGN.md");
    let design = std::fs::read_to_string(design_path).expect("DESIGN.md is readable");

    let expected = FrontendRegistry::builtin().markdown_table();
    assert_eq!(
        between_markers(&design, "DESIGN.md", "frontend-table"),
        expected,
        "DESIGN frontend table is stale — regenerate it with \
         `cargo run -p sgx-orchestrator --bin exp_frontends -- --list-frontends`"
    );
}

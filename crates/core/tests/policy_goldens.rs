//! Replay-level equivalence anchors for the scheduling framework refactor.
//!
//! Each scenario replays a full workload and folds the *entire*
//! [`ReplayResult`] (placements, timings, events, migration and fault
//! statistics, imbalance series) into a 64-bit FNV-1a digest. The expected
//! values were recorded by running this exact grid against the pre-refactor
//! `PlacementPolicy`/`SchedulerKind` enums, so a passing run proves the
//! plugin pipelines are bit-identical to the original policies at replay
//! granularity — not just on single placements.
//!
//! The digests hash `Debug` output, which for this result type contains
//! only integers, strings, enums and exact shortest-roundtrip floats; it is
//! deterministic for identical bit patterns.

use des::SimDuration;
use sgx_orchestrator::Experiment;
use sgx_sim::units::ByteSize;
use simulation::{replay, FaultPlan, NodeDrain, ProbeSilence, RebalanceConfig};

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn digest(exp: &Experiment) -> u64 {
    let result = exp.run();
    fnv1a64(format!("{result:?}").as_bytes())
}

fn silence_plan(seed: u64) -> FaultPlan {
    FaultPlan::none()
        .with_seed(seed)
        .with_scrape_drops(0.25)
        .with_silence(ProbeSilence {
            node: "sgx-1".to_string(),
            from_secs: 120,
            until_secs: 900,
        })
}

/// The scenario grid: every registered policy, plus rebalance-, fault- and
/// EPC-pressure variants that drive the migration, drain and degraded
/// code paths through the same pipelines.
fn scenarios() -> Vec<(&'static str, Experiment)> {
    vec![
        (
            "binpack/all-sgx",
            Experiment::quick(11)
                .sgx_ratio(1.0)
                .scheduler("sgx-binpack"),
        ),
        (
            "spread/all-sgx",
            Experiment::quick(11).sgx_ratio(1.0).scheduler("sgx-spread"),
        ),
        (
            "default/all-sgx",
            Experiment::quick(11).sgx_ratio(1.0).scheduler("default"),
        ),
        (
            "binpack/mixed",
            Experiment::quick(12)
                .sgx_ratio(0.5)
                .scheduler("sgx-binpack"),
        ),
        (
            "spread/mixed",
            Experiment::quick(12).sgx_ratio(0.5).scheduler("sgx-spread"),
        ),
        (
            "default/mixed",
            Experiment::quick(12).sgx_ratio(0.5).scheduler("default"),
        ),
        (
            "binpack/small-epc",
            Experiment::quick(13)
                .sgx_ratio(0.75)
                .epc_size(ByteSize::from_mib(64))
                .scheduler("sgx-binpack"),
        ),
        (
            "spread/small-epc",
            Experiment::quick(13)
                .sgx_ratio(0.75)
                .epc_size(ByteSize::from_mib(64))
                .scheduler("sgx-spread"),
        ),
        (
            "binpack/rebalance",
            Experiment::quick(8)
                .sgx_ratio(1.0)
                .scheduler("sgx-binpack")
                .rebalance(RebalanceConfig::every(SimDuration::from_secs(60), 0.1)),
        ),
        (
            "spread/rebalance",
            Experiment::quick(8)
                .sgx_ratio(1.0)
                .scheduler("sgx-spread")
                .rebalance(RebalanceConfig::every(SimDuration::from_secs(60), 0.1)),
        ),
        (
            "binpack/faults",
            Experiment::quick(9)
                .sgx_ratio(1.0)
                .scheduler("sgx-binpack")
                .faults(silence_plan(9)),
        ),
        (
            "spread/faults",
            Experiment::quick(9)
                .sgx_ratio(0.5)
                .scheduler("sgx-spread")
                .faults(silence_plan(9)),
        ),
        (
            "binpack/malicious",
            Experiment::quick(15)
                .sgx_ratio(1.0)
                .scheduler("sgx-binpack")
                .malicious(0.25)
                .limits(false),
        ),
    ]
}

/// Drain windows exercise `drain_node`'s snapshot-driven placement; this
/// scenario is built on the raw `ReplayConfig` because `Experiment` has no
/// drain builder.
fn drain_digest() -> u64 {
    let exp = Experiment::quick(14)
        .sgx_ratio(1.0)
        .scheduler("sgx-binpack");
    let config = exp.replay_config().with_drain(NodeDrain {
        node: "sgx-1".to_string(),
        drain_at_secs: 300,
        down_for: SimDuration::from_secs(600),
    });
    let result = replay(&exp.workload(), &config);
    fnv1a64(format!("{result:?}").as_bytes())
}

/// Pre-refactor digests. Regenerate by running with `GOLDEN_PRINT=1` and
/// pasting the output — but a legitimate regeneration should only ever be
/// needed if replay semantics (not scheduling policy) deliberately change.
const EXPECTED: &[(&str, u64)] = &[
    ("binpack/all-sgx", 0xcae9d2ab20bfa5d4),
    ("spread/all-sgx", 0x5c75673d672a81c4),
    ("default/all-sgx", 0x2ff7098726274a35),
    ("binpack/mixed", 0x45e81825ae88af71),
    ("spread/mixed", 0x102be4f46289ad62),
    ("default/mixed", 0xb30e83c5dc825dd9),
    ("binpack/small-epc", 0x9aaa11fddb10eb44),
    ("spread/small-epc", 0x9ee0da2189c8639b),
    ("binpack/rebalance", 0x13b27099c994a17f),
    ("spread/rebalance", 0x74e8e4013a5d1e97),
    ("binpack/faults", 0xaea82210bd17f87a),
    ("spread/faults", 0x06f42235aa43a4cf),
    ("binpack/malicious", 0xbd0115715a08e7dd),
    ("drain/binpack", 0x975d7d6c4b0e330c),
];

#[test]
fn replay_results_match_pre_refactor_goldens() {
    let print = std::env::var("GOLDEN_PRINT").is_ok();
    let mut actual: Vec<(&'static str, u64)> = scenarios()
        .iter()
        .map(|(name, exp)| (*name, digest(exp)))
        .collect();
    actual.push(("drain/binpack", drain_digest()));

    if print {
        for (name, hash) in &actual {
            println!("    (\"{name}\", {hash:#018x}),");
        }
        return;
    }
    let expected: std::collections::BTreeMap<_, _> = EXPECTED.iter().copied().collect();
    for (name, hash) in actual {
        assert_eq!(
            Some(&hash),
            expected.get(name),
            "scenario `{name}` diverged from the pre-refactor replay digest"
        );
    }
}

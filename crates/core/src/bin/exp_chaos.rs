//! Chaos experiment — fault-injected probe pipeline at sweep scale.
//!
//! Replays the same workloads under increasing metrics-pipeline fault
//! rates (scrape drops, delayed frames, shard write failures, plus a
//! long probe silence on one SGX node at nonzero rates) and compares
//! frame loss, staleness-degraded scheduling decisions, waiting times
//! and makespans against the fault-free baseline.
//!
//! ```text
//! cargo run --release -p sgx-orchestrator --bin exp_chaos            # full sweep
//! cargo run --release -p sgx-orchestrator --bin exp_chaos -- --smoke # CI-sized
//! cargo run --release -p sgx-orchestrator --bin exp_chaos -- --list-policies
//! ```

use des::{SimDuration, SimTime};
use orchestrator::PolicyRegistry;
use sgx_orchestrator::Experiment;
use simulation::{analysis, FaultPlan, ProbeSilence};

/// The swept fault plan at `rate`: drops, delays and write failures all
/// at `rate`, plus — so the staleness fallback demonstrably fires — a
/// ten-minute probe silence on sgx-1 at every nonzero rate.
fn plan_at(rate: f64, seed: u64) -> FaultPlan {
    if rate == 0.0 {
        return FaultPlan::none();
    }
    FaultPlan::none()
        .with_seed(seed)
        .with_scrape_drops(rate)
        .with_delays(rate, SimDuration::from_secs(45))
        .with_write_failures(rate)
        .with_silence(ProbeSilence {
            node: "sgx-1".to_string(),
            from_secs: 600,
            until_secs: 1200,
        })
}

fn main() {
    if std::env::args().any(|a| a == "--list-policies") {
        print!("{}", PolicyRegistry::builtin().markdown_table());
        return;
    }
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (seeds, rates): (Vec<u64>, Vec<f64>) = if smoke {
        (vec![41], vec![0.0, 0.2])
    } else {
        (vec![41, 42, 43], vec![0.0, 0.1, 0.3])
    };

    // Same workload per seed at every rate: the experiment only differs
    // in the fault plan, so deltas are attributable to the chaos.
    let base = |seed: u64| {
        if smoke {
            Experiment::quick(seed).sgx_ratio(1.0)
        } else {
            Experiment::paper_replay(seed).sgx_ratio(1.0)
        }
    };
    let experiments: Vec<(u64, f64, Experiment)> = seeds
        .iter()
        .flat_map(|&seed| {
            rates
                .iter()
                .map(move |&rate| (seed, rate, base(seed).faults(plan_at(rate, seed))))
        })
        .collect();

    let batch: Vec<Experiment> = experiments.iter().map(|(_, _, e)| e.clone()).collect();
    let results = Experiment::run_all(&batch);

    // Determinism spot-check: the first *faulted* configuration,
    // replayed again, must be bit-identical (the injector's RNG stream
    // derives from the plan alone, not from sweep order).
    let faulted_index = experiments
        .iter()
        .position(|(_, rate, _)| *rate > 0.0)
        .expect("sweep always includes a nonzero rate");
    let again = experiments[faulted_index].2.run();
    assert_eq!(
        again.runs(),
        results[faulted_index].runs(),
        "faulted replay is not deterministic"
    );
    assert_eq!(again.end_time(), results[faulted_index].end_time());
    assert_eq!(again.fault_stats(), results[faulted_index].fault_stats());

    println!(
        "# Metrics-pipeline chaos sweep ({})",
        if smoke { "smoke" } else { "full" }
    );
    println!();
    println!(
        "| seed | fault rate | scraped | silenced | dropped | delayed | retried | lost | loss rate | degraded decisions | mean wait [s] | makespan [s] | completed |"
    );
    println!("|---|---|---|---|---|---|---|---|---|---|---|---|---|");
    for ((seed, rate, _), result) in experiments.iter().zip(&results) {
        let stats = result.fault_stats();
        println!(
            "| {} | {:.2} | {} | {} | {} | {} | {} | {} | {:.3} | {} | {:.1} | {:.0} | {} |",
            seed,
            rate,
            stats.frames_scraped,
            stats.frames_silenced,
            stats.frames_dropped,
            stats.frames_delayed,
            stats.frames_retried,
            stats.frames_lost,
            analysis::frame_loss_rate(result),
            analysis::degraded_decisions(result),
            analysis::mean_waiting_secs(result, None),
            result
                .end_time()
                .saturating_since(SimTime::ZERO)
                .as_secs_f64(),
            result.completed_count(),
        );

        // Invariants the sweep enforces on every run.
        let total = result.completed_count() + result.denied_count() + result.unschedulable_count();
        assert_eq!(total, result.runs().len(), "non-terminal pods remain");
        assert!(!result.timed_out(), "seed {seed} rate {rate} timed out");
        if *rate == 0.0 {
            assert!(
                stats.is_clean() && result.degraded_decisions() == 0,
                "fault-free run reported faults"
            );
        } else {
            assert!(
                result.degraded_decisions() > 0,
                "seed {seed} rate {rate}: the probe silence produced no degraded decisions"
            );
            assert!(
                stats.frames_dropped > 0 && stats.frames_silenced > 0,
                "seed {seed} rate {rate}: injector left no trace"
            );
            assert_eq!(
                stats.frames_scraped,
                stats.frames_silenced
                    + stats.frames_dropped
                    + stats.frames_delivered
                    + stats.frames_lost,
                "frame accounting does not balance"
            );
        }
    }

    // Per-rate aggregate over seeds: the headline comparison.
    println!();
    println!("## Aggregate over {} seed(s)", seeds.len());
    println!();
    println!("| fault rate | loss rate | degraded decisions/run | mean wait [s] | makespan [s] |");
    println!("|---|---|---|---|---|");
    for &rate in &rates {
        let of_rate: Vec<_> = experiments
            .iter()
            .zip(&results)
            .filter(|((_, r, _), _)| *r == rate)
            .map(|(_, result)| result)
            .collect();
        let n = of_rate.len() as f64;
        let loss = of_rate
            .iter()
            .map(|r| analysis::frame_loss_rate(r))
            .sum::<f64>()
            / n;
        let degraded = of_rate
            .iter()
            .map(|r| analysis::degraded_decisions(r))
            .sum::<u64>() as f64
            / n;
        let wait = of_rate
            .iter()
            .map(|r| analysis::mean_waiting_secs(r, None))
            .sum::<f64>()
            / n;
        let makespan = of_rate
            .iter()
            .map(|r| r.end_time().saturating_since(SimTime::ZERO).as_secs_f64())
            .sum::<f64>()
            / n;
        println!("| {rate:.2} | {loss:.3} | {degraded:.1} | {wait:.1} | {makespan:.0} |");
    }
    println!();
    println!(
        "every pod reached a terminal state at every fault rate; \
         stale nodes fell back to requests-only accounting"
    );
}

//! Frontend experiment — the four built-in trace frontends streamed
//! through the replay engine.
//!
//! Runs every registered [`FrontendRegistry`] frontend (Borg-synthetic,
//! Alibaba-shaped, diurnal serving, adversarial mix) through
//! `replay_stream` at the same cluster and scheduler configuration,
//! checks that each drains deterministically to all-terminal pods, and
//! prints the cross-frontend comparison: outcome mix, hostile
//! submissions, waiting time, pod-group peaks, and the streamed
//! lookahead (peak materialised jobs — 1 for every frontend, versus
//! the whole workload under the legacy batch path).
//!
//! ```text
//! cargo run --release -p sgx-orchestrator --bin exp_frontends            # full scale
//! cargo run --release -p sgx-orchestrator --bin exp_frontends -- --smoke # CI-sized
//! cargo run --release -p sgx-orchestrator --bin exp_frontends -- --list-frontends
//! ```

use borg_trace::FrontendRegistry;
use des::SimTime;
use sgx_orchestrator::Experiment;
use simulation::{analysis, ReplayResult};

fn main() {
    if std::env::args().any(|a| a == "--list-frontends") {
        print!("{}", FrontendRegistry::builtin().markdown_table());
        return;
    }
    let smoke = std::env::args().any(|a| a == "--smoke");
    let seeds: Vec<u64> = if smoke { vec![71] } else { vec![71, 72] };
    let registry = FrontendRegistry::builtin();
    let names = registry.names();

    let experiments: Vec<(u64, &str, Experiment)> = seeds
        .iter()
        .flat_map(|&seed| {
            let names = &names;
            names.iter().map(move |name| {
                let base = if smoke {
                    Experiment::quick(seed)
                } else {
                    Experiment::paper_replay(seed)
                };
                (seed, *name, base.frontend(name))
            })
        })
        .collect();

    // Streaming frontends cannot enter the materialising sweep
    // (`run_all` rejects them), so fan the runs out by hand.
    let results: Vec<ReplayResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = experiments
            .iter()
            .map(|(_, _, exp)| scope.spawn(|| exp.run()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("replay thread panicked"))
            .collect()
    });

    // Determinism spot-check: the first configuration, streamed again,
    // must be bit-identical (thread scheduling does not leak into the
    // replay).
    let again = experiments[0].2.run();
    assert_eq!(
        format!("{again:?}"),
        format!("{:?}", results[0]),
        "streamed replay is not deterministic"
    );

    println!(
        "# Trace frontend sweep ({})",
        if smoke { "smoke" } else { "full" }
    );
    println!();
    println!(
        "| seed | frontend | jobs | completed | denied | unschedulable | hostile | mean wait [s] | makespan [s] | group peaks | lookahead |"
    );
    println!("|---|---|---|---|---|---|---|---|---|---|---|");
    for ((seed, name, _), result) in experiments.iter().zip(&results) {
        // Every frontend drains: no pod is left non-terminal and the
        // replay never hits the safety cap.
        assert!(!result.timed_out(), "{name} (seed {seed}) timed out");
        let terminal =
            result.completed_count() + result.denied_count() + result.unschedulable_count();
        assert_eq!(
            terminal,
            result.runs().len(),
            "{name} (seed {seed}) left non-terminal pods"
        );
        // The whole point of the stream: at most one job ahead of the
        // clock, independent of the horizon.
        assert!(result.peak_materialized_jobs() <= 1);

        let hostile = result.runs().iter().filter(|r| r.malicious).count();
        if *name == borg_trace::frontend::ADVERSARIAL_MIX {
            assert!(hostile > 0, "adversarial mix produced no hostile pods");
            assert!(
                result.denied_count() >= 1,
                "no hostile pod was denied under limit enforcement"
            );
        }
        let peaks = result.group_peak_replicas();
        if *name == borg_trace::frontend::DIURNAL_SERVING {
            assert!(!peaks.is_empty(), "diurnal serving announced no groups");
        }
        let group_peaks = if peaks.is_empty() {
            "-".to_string()
        } else {
            peaks
                .iter()
                .map(|(group, peak)| format!("{group}:{peak}"))
                .collect::<Vec<_>>()
                .join(" ")
        };
        println!(
            "| {} | {} | {} | {} | {} | {} | {} | {:.1} | {:.0} | {} | {} |",
            seed,
            name,
            result.runs().len(),
            result.completed_count(),
            result.denied_count(),
            result.unschedulable_count(),
            hostile,
            analysis::mean_waiting_secs(result, None),
            result
                .end_time()
                .saturating_since(SimTime::ZERO)
                .as_secs_f64(),
            group_peaks,
            result.peak_materialized_jobs(),
        );
    }
    println!();
    println!(
        "all {} frontend runs drained to all-terminal pods with a streaming lookahead of at most one job",
        experiments.len()
    );
}

//! `sgxctl` — command-line front end to the sgx-orchestrator workspace.
//!
//! ```text
//! sgxctl cluster                         inspect the paper's cluster
//! sgxctl trace generate [opts]           write a prepared trace as CSV
//! sgxctl trace stats [opts]              marginal statistics (Figs. 3-5)
//! sgxctl replay [opts]                   replay a workload, print metrics
//! sgxctl help                            this text
//! ```
//!
//! Run `sgxctl <command> --help` for the options of each command.

use std::process::ExitCode;

use borg_trace::{stats, GeneratorConfig, JobKind, TracePipeline, Workload, WorkloadParams};
use orchestrator::autoscale::AutoscalerPolicy;
use orchestrator::billing::{Invoice, PriceSheet};
use sgx_orchestrator::prelude::*;
use simulation::analysis::{mean_waiting_secs, total_turnaround, waiting_cdf};
use simulation::AutoscaleConfig;

const HELP: &str = "\
sgxctl — SGX-aware container orchestration for heterogeneous clusters

USAGE:
    sgxctl <COMMAND> [OPTIONS]

COMMANDS:
    cluster            Show the paper's five-machine cluster topology
    trace generate     Generate the prepared Borg-derived trace as CSV (stdout)
    trace stats        Print the trace's marginal statistics (Figs. 3-5)
    replay             Replay a workload against the simulated cluster
    help               Show this message

COMMON OPTIONS:
    --seed <N>         Base seed (default 42); every run is a pure function of it

`sgxctl replay` OPTIONS:
    --trace <FILE>     Replay a CSV trace instead of generating one
    --quick            Use the small one-hour trace instead of paper scale
    --sgx-ratio <R>    Fraction of jobs designated SGX-enabled (default 0.5)
    --scheduler <S>    sgx-binpack | sgx-spread | default (default sgx-binpack)
    --frontend <NAME>  Stream submissions from a registered trace frontend
                       instead of materialising a workload; --quick selects the
                       smoke-scale calibration (see --list-frontends)
    --list-frontends   List the registered trace frontends and exit
    --percentage-of-nodes-to-score <P>
                       Score only P% of feasible nodes per placement, 1-100
                       (default 100: score every node, the paper's behaviour)
    --epc-total <MIB>  Simulate a single SGX node with this much usable EPC
    --no-limits        Disable driver-side EPC limit enforcement (Fig. 11)
    --malicious <F>    Add one squatter per SGX node mapping F of its EPC
    --bill             Print the invoice total (requests-based billing)
    --autoscale        Enable the cluster autoscaler (paper defaults); the
                       flags below imply it and override individual knobs
    --autoscale-period <SECS>
                       Controller tick period, > 0 (default 30)
    --autoscale-up-wait-secs <SECS>
                       Queue wait that triggers a scale-up, > 0 (default 30)
    --autoscale-cooldown-secs <SECS>
                       Low-occupancy dwell before a scale-down (default 300)
    --autoscale-low-water <F>
                       Scale-down occupancy threshold, in (0, 1] (default 0.3)
    --autoscale-max-nodes <N>
                       Per-tier cap on autoscaled nodes, > 0 (default 10000)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args::new(&args);
    match args.next_positional().as_deref() {
        Some("cluster") => cmd_cluster(),
        Some("trace") => match args.next_positional().as_deref() {
            Some("generate") => cmd_trace_generate(&mut args),
            Some("stats") => cmd_trace_stats(&mut args),
            other => usage_error(&format!("unknown trace subcommand {other:?}")),
        },
        Some("replay") => cmd_replay(&mut args),
        Some("help") | None => {
            print!("{HELP}");
            ExitCode::SUCCESS
        }
        Some(other) => usage_error(&format!("unknown command `{other}`")),
    }
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("error: {message}\n");
    eprint!("{HELP}");
    ExitCode::FAILURE
}

// ------------------------------------------------------------- commands

fn cmd_cluster() -> ExitCode {
    let cluster = Cluster::build(&ClusterSpec::paper_cluster());
    println!(
        "{:<8} {:<7} {:>9} {:>13} {:>9} {:>10}",
        "NAME", "ROLE", "MEMORY", "EPC (usable)", "SGX", "PLATFORM"
    );
    for node in cluster.nodes() {
        println!(
            "{:<8} {:<7} {:>9} {:>13} {:>9} {:>10}",
            node.name().as_str(),
            if node.is_schedulable() {
                "worker"
            } else {
                "master"
            },
            node.allocatable_memory().to_string(),
            node.spec().usable_epc().to_string(),
            node.driver()
                .map_or("-".to_string(), |d| d.version().to_string()),
            node.platform()
                .map_or("-".to_string(), |p| format!("{p:#010x}")[..10].to_string()),
        );
    }
    println!(
        "\ntotal: {} of memory, {} of EPC across {} workers",
        cluster.total_memory(),
        cluster.total_epc(),
        cluster.schedulable_nodes().count(),
    );
    ExitCode::SUCCESS
}

fn prepared_trace(args: &mut Args) -> Result<borg_trace::Trace, String> {
    let seed = args.flag_u64("--seed")?.unwrap_or(42);
    if args.has_flag("--quick") {
        Ok(GeneratorConfig::small(seed).generate())
    } else {
        let raw = GeneratorConfig::replay_scale(seed).generate_sampled(1200);
        Ok(TracePipeline::paper().sample_every(1).prepare(&raw))
    }
}

fn cmd_trace_generate(args: &mut Args) -> ExitCode {
    match prepared_trace(args) {
        Ok(trace) => {
            print!("{}", borg_trace::csv::to_csv(&trace));
            eprintln!("generated {} jobs", trace.len());
            ExitCode::SUCCESS
        }
        Err(e) => usage_error(&e),
    }
}

fn cmd_trace_stats(args: &mut Args) -> ExitCode {
    let trace = match load_or_generate_trace(args) {
        Ok(t) => t,
        Err(e) => return usage_error(&e),
    };
    let durations = stats::duration_cdf(&trace);
    let memory = stats::memory_usage_cdf(&trace);
    println!("jobs:            {}", trace.len());
    println!(
        "useful duration: {:.1} h",
        trace.total_duration().as_hours_f64()
    );
    println!(
        "duration [s]:    median {:.0}, p95 {:.0}, max {:.0}",
        durations.quantile(0.5).unwrap_or(0.0),
        durations.quantile(0.95).unwrap_or(0.0),
        durations.max().unwrap_or(0.0),
    );
    println!(
        "mem fraction:    median {:.4}, p95 {:.3}, max {:.3}",
        memory.quantile(0.5).unwrap_or(0.0),
        memory.quantile(0.95).unwrap_or(0.0),
        memory.max().unwrap_or(0.0),
    );
    println!(
        "over-users:      {} ({:.1} %)",
        trace.over_user_count(),
        100.0 * trace.over_user_count() as f64 / trace.len().max(1) as f64,
    );
    ExitCode::SUCCESS
}

fn load_or_generate_trace(args: &mut Args) -> Result<borg_trace::Trace, String> {
    if let Some(path) = args.flag_value("--trace") {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read trace file `{path}`: {e}"))?;
        borg_trace::csv::from_csv(&text).map_err(|e| format!("bad trace file: {e}"))
    } else {
        prepared_trace(args)
    }
}

fn cmd_replay(args: &mut Args) -> ExitCode {
    if args.has_flag("--list-frontends") {
        for name in FrontendRegistry::builtin().names() {
            println!("{name}");
        }
        return ExitCode::SUCCESS;
    }
    let seed = match args.flag_u64("--seed") {
        Ok(v) => v.unwrap_or(42),
        Err(e) => return usage_error(&e),
    };
    let frontend_name = args.flag_value("--frontend");
    if let Some(name) = &frontend_name {
        if !FrontendRegistry::builtin().contains(name) {
            return usage_error(&format!(
                "unknown frontend `{name}` (registered: {})",
                FrontendRegistry::builtin().names().join(", ")
            ));
        }
    }
    let trace = if frontend_name.is_some() {
        None
    } else {
        match load_or_generate_trace(args) {
            Ok(t) => Some(t),
            Err(e) => return usage_error(&e),
        }
    };
    let ratio = match args.flag_f64("--sgx-ratio") {
        Ok(v) => v.unwrap_or(0.5),
        Err(e) => return usage_error(&e),
    };
    if !(0.0..=1.0).contains(&ratio) {
        return usage_error("--sgx-ratio must lie in [0, 1]");
    }
    let scheduler = args
        .flag_value("--scheduler")
        .unwrap_or_else(|| SGX_BINPACK.to_string());
    let registry = PolicyRegistry::builtin();
    if !registry.contains(&scheduler) {
        return usage_error(&format!(
            "unknown scheduler `{scheduler}` (registered: {})",
            registry.names().join(", ")
        ));
    }

    let mut config = ReplayConfig::paper(seed).with_scheduler(&scheduler);
    match args.flag_u64("--percentage-of-nodes-to-score") {
        Ok(Some(percentage)) => {
            if !(1..=100).contains(&percentage) {
                return usage_error("--percentage-of-nodes-to-score must lie in [1, 100]");
            }
            config.orchestrator = config
                .orchestrator
                .with_percentage_of_nodes_to_score(percentage as u8);
        }
        Ok(None) => {}
        Err(e) => return usage_error(&e),
    }
    match args.flag_u64("--epc-total") {
        Ok(Some(mib)) => {
            config = config.with_cluster(ClusterSpec::sim_cluster_with_total_epc(
                ByteSize::from_mib(mib),
            ));
        }
        Ok(None) => {}
        Err(e) => return usage_error(&e),
    }
    if args.has_flag("--no-limits") {
        config = config.without_limits();
    }
    match args.flag_f64("--malicious") {
        Ok(Some(fraction)) => {
            config = config.with_malicious(MaliciousConfig::squatting(fraction));
        }
        Ok(None) => {}
        Err(e) => return usage_error(&e),
    }
    match autoscale_flags(args) {
        Ok(Some(autoscale)) => config = config.with_autoscale(autoscale),
        Ok(None) => {}
        Err(e) => return usage_error(&e),
    }

    let result = match &frontend_name {
        Some(name) => {
            let params = if args.has_flag("--quick") {
                FrontendParams::new(seed, ratio).smoke()
            } else {
                FrontendParams::new(seed, ratio)
            };
            config = config.with_frontend(name);
            let mut frontend = FrontendRegistry::builtin()
                .build(name, &params)
                .expect("name validated against the registry above");
            eprintln!(
                "streaming ~{} jobs from frontend `{name}` under {scheduler}…",
                frontend.hint().expected_jobs
            );
            simulation::replay_stream(frontend.as_mut(), &config)
        }
        None => {
            let trace = trace.expect("materialised path always loads a trace");
            let workload = Workload::materialize(&trace, &WorkloadParams::paper(ratio, seed));
            eprintln!(
                "replaying {} jobs ({} SGX) under {scheduler}…",
                workload.len(),
                workload.sgx_count()
            );
            simulation::replay(&workload, &config)
        }
    };

    println!("makespan:      {}", result.end_time());
    println!(
        "outcomes:      {} completed, {} denied at launch, {} unschedulable",
        result.completed_count(),
        result.denied_count(),
        result.unschedulable_count(),
    );
    for kind in [JobKind::Standard, JobKind::Sgx] {
        let cdf = waiting_cdf(&result, Some(kind));
        if cdf.is_empty() {
            continue;
        }
        println!(
            "{kind:>9} jobs: mean wait {:>7.1} s | p95 {:>6.0} s | max {:>6.0} s | Σ turnaround {:>6.1} h",
            mean_waiting_secs(&result, Some(kind)),
            cdf.quantile(0.95).unwrap_or(0.0),
            cdf.max().unwrap_or(0.0),
            total_turnaround(&result, Some(kind)).as_hours_f64(),
        );
    }
    println!(
        "peak backlog:  {:.0} MiB of pending EPC requests",
        result.pending_epc_series().peak().unwrap_or(0.0)
    );
    if let Some(metrics) = result.elasticity() {
        println!(
            "autoscaling:   +{} / -{} nodes (peak {}), mean scale-up latency {}, {:.0} wasted node·s",
            metrics.nodes_added,
            metrics.nodes_removed,
            metrics.peak_nodes,
            metrics
                .mean_scale_up_latency_secs()
                .map_or_else(|| "n/a".to_string(), |s| format!("{s:.1} s")),
            metrics.wasted_capacity_node_secs,
        );
    }
    if args.has_flag("--bill") {
        let records: std::collections::BTreeMap<_, _> = result
            .runs()
            .iter()
            .map(|run| (run.record.uid, run.record.clone()))
            .collect();
        let invoice = Invoice::compute(&records, &PriceSheet::paper_cluster());
        println!(
            "invoice:       {:.4} across {} billed pods (requests × running time)",
            invoice.total(),
            invoice.lines().len(),
        );
    }
    ExitCode::SUCCESS
}

/// Parses the `--autoscale*` flags into an [`AutoscaleConfig`].
///
/// Returns `Ok(None)` when none of them is present; any knob flag
/// implies `--autoscale`. Every value is range-checked here so a bad
/// flag is a usage error, not a panic inside the policy validator.
fn autoscale_flags(args: &mut Args) -> Result<Option<AutoscaleConfig>, String> {
    let mut enabled = args.has_flag("--autoscale");
    let mut period = SimDuration::from_secs(30);
    let mut policy = AutoscalerPolicy::paper_defaults();
    if let Some(secs) = args.flag_u64("--autoscale-period")? {
        if secs == 0 {
            return Err("--autoscale-period must be positive".to_string());
        }
        period = SimDuration::from_secs(secs);
        enabled = true;
    }
    if let Some(secs) = args.flag_u64("--autoscale-up-wait-secs")? {
        if secs == 0 {
            return Err("--autoscale-up-wait-secs must be positive".to_string());
        }
        policy = policy.with_scale_up_wait(SimDuration::from_secs(secs));
        enabled = true;
    }
    if let Some(secs) = args.flag_u64("--autoscale-cooldown-secs")? {
        policy = policy.with_scale_down_after(SimDuration::from_secs(secs));
        enabled = true;
    }
    if let Some(low_water) = args.flag_f64("--autoscale-low-water")? {
        if !(low_water > 0.0 && low_water <= 1.0) {
            return Err("--autoscale-low-water must lie in (0, 1]".to_string());
        }
        policy = policy.with_low_water(low_water);
        enabled = true;
    }
    if let Some(max_nodes) = args.flag_u64("--autoscale-max-nodes")? {
        if max_nodes == 0 {
            return Err("--autoscale-max-nodes must be positive".to_string());
        }
        policy = policy.with_max_nodes(max_nodes as usize);
        enabled = true;
    }
    Ok(enabled.then(|| AutoscaleConfig::every(period, policy)))
}

// --------------------------------------------------------- tiny arg parser

struct Args {
    tokens: Vec<String>,
}

impl Args {
    fn new(args: &[String]) -> Self {
        Args {
            tokens: args.to_vec(),
        }
    }

    /// Removes and returns the first non-flag token.
    fn next_positional(&mut self) -> Option<String> {
        let idx = self.tokens.iter().position(|t| !t.starts_with("--"))?;
        Some(self.tokens.remove(idx))
    }

    /// Removes a boolean flag, returning whether it was present.
    fn has_flag(&mut self, name: &str) -> bool {
        match self.tokens.iter().position(|t| t == name) {
            Some(idx) => {
                self.tokens.remove(idx);
                true
            }
            None => false,
        }
    }

    /// Removes `--name value`, returning the value.
    fn flag_value(&mut self, name: &str) -> Option<String> {
        let idx = self.tokens.iter().position(|t| t == name)?;
        if idx + 1 >= self.tokens.len() {
            return None;
        }
        self.tokens.remove(idx);
        Some(self.tokens.remove(idx))
    }

    fn flag_u64(&mut self, name: &str) -> Result<Option<u64>, String> {
        self.flag_value(name)
            .map(|v| {
                v.parse::<u64>()
                    .map_err(|_| format!("{name} expects an integer, got `{v}`"))
            })
            .transpose()
    }

    fn flag_f64(&mut self, name: &str) -> Result<Option<f64>, String> {
        self.flag_value(name)
            .map(|v| {
                v.parse::<f64>()
                    .map_err(|_| format!("{name} expects a number, got `{v}`"))
            })
            .transpose()
    }
}

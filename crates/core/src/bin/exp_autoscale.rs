//! Autoscale experiment — cluster elasticity under the paper's replay
//! workload (§IX).
//!
//! Replays the same workloads with the cluster autoscaler off and on at
//! several scale-up waits via the parallel sweep, and compares queueing
//! (the autoscaler's whole point is to absorb the SGX backlog) against
//! the elasticity bill: nodes added, scale-up latency, and wasted
//! capacity.
//!
//! ```text
//! cargo run --release -p sgx-orchestrator --bin exp_autoscale            # full sweep
//! cargo run --release -p sgx-orchestrator --bin exp_autoscale -- --smoke # CI-sized
//! cargo run --release -p sgx-orchestrator --bin exp_autoscale -- --list-policies
//! ```

use des::{SimDuration, SimTime};
use orchestrator::autoscale::AutoscalerPolicy;
use orchestrator::PolicyRegistry;
use sgx_orchestrator::Experiment;
use sgx_sim::units::ByteSize;
use simulation::{analysis, AutoscaleConfig, ReplayResult};

/// One swept configuration: autoscaling off, or on reacting after a
/// given queue wait.
#[derive(Debug, Clone, Copy)]
enum Mode {
    Off,
    On(u64),
}

impl Mode {
    fn label(self) -> String {
        match self {
            Mode::Off => "off".to_string(),
            Mode::On(wait_secs) => format!("on @ {wait_secs}s"),
        }
    }

    fn apply(self, experiment: Experiment) -> Experiment {
        match self {
            Mode::Off => experiment,
            Mode::On(wait_secs) => {
                let policy = AutoscalerPolicy::paper_defaults()
                    .with_scale_up_wait(SimDuration::from_secs(wait_secs))
                    .with_scale_down_after(SimDuration::from_secs(120))
                    .with_max_nodes(32)
                    .with_max_step(4);
                experiment.autoscale(AutoscaleConfig::every(SimDuration::from_secs(15), policy))
            }
        }
    }
}

fn main() {
    if std::env::args().any(|a| a == "--list-policies") {
        print!("{}", PolicyRegistry::builtin().markdown_table());
        return;
    }
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (seeds, waits): (Vec<u64>, Vec<u64>) = if smoke {
        (vec![51], vec![30])
    } else {
        (vec![51, 52, 53], vec![10, 30, 60])
    };
    let mut modes = vec![Mode::Off];
    modes.extend(waits.iter().map(|&w| Mode::On(w)));

    // Same workload per seed in every mode: the experiment only differs
    // in the autoscale knob, so deltas are attributable to elasticity.
    // The baseline SGX nodes carry a reduced EPC so the tier is genuinely
    // backlogged — the regime the autoscaler exists for (off = the
    // paper's Fig. 8 queueing, on = the backlog absorbed by new nodes).
    let base = |seed: u64| {
        if smoke {
            Experiment::quick(seed)
                .sgx_ratio(1.0)
                .epc_size(ByteSize::from_mib(24))
        } else {
            Experiment::paper_replay(seed)
                .sgx_ratio(1.0)
                .epc_size(ByteSize::from_mib(24))
        }
    };
    let experiments: Vec<(u64, Mode, Experiment)> = seeds
        .iter()
        .flat_map(|&seed| {
            modes
                .iter()
                .map(move |&mode| (seed, mode, mode.apply(base(seed))))
        })
        .collect();

    let batch: Vec<Experiment> = experiments.iter().map(|(_, _, e)| e.clone()).collect();
    let results = Experiment::run_all(&batch);

    // Determinism spot-check: the first autoscaled configuration,
    // replayed again, must be bit-identical (sweep order does not leak
    // into node lifecycles or elasticity metrics).
    let again = experiments[1].2.run();
    assert_eq!(
        again.runs(),
        results[1].runs(),
        "autoscaled replay is not deterministic"
    );
    assert_eq!(again.end_time(), results[1].end_time());
    assert_eq!(again.elasticity(), results[1].elasticity());

    println!(
        "# Cluster autoscaling sweep ({})",
        if smoke { "smoke" } else { "full" }
    );
    println!();
    println!(
        "| seed | autoscale | scale-ups | nodes +/- | peak nodes | mean up-latency [s] | max up-latency [s] | wasted [node·s] | mean wait [s] | mean turnaround [s] | makespan [s] | completed |"
    );
    println!("|---|---|---|---|---|---|---|---|---|---|---|---|");
    for ((seed, mode, _), result) in experiments.iter().zip(&results) {
        let (ups, added, removed) = match result.elasticity() {
            Some(m) => (m.scale_up_events, m.nodes_added, m.nodes_removed),
            None => (0, 0, 0),
        };
        println!(
            "| {} | {} | {} | +{}/-{} | {} | {} | {} | {:.0} | {:.1} | {:.1} | {:.0} | {} |",
            seed,
            mode.label(),
            ups,
            added,
            removed,
            analysis::peak_node_count(result).map_or_else(|| "-".to_string(), |n| n.to_string()),
            analysis::mean_scale_up_latency_secs(result)
                .map_or_else(|| "-".to_string(), |s| format!("{s:.1}")),
            analysis::max_scale_up_latency_secs(result)
                .map_or_else(|| "-".to_string(), |s| format!("{s:.1}")),
            analysis::wasted_capacity_node_secs(result),
            analysis::mean_waiting_secs(result, None),
            analysis::mean_turnaround_secs(result, None),
            result
                .end_time()
                .saturating_since(SimTime::ZERO)
                .as_secs_f64(),
            result.completed_count(),
        );
    }

    // Per-mode aggregate over seeds: the headline comparison.
    println!();
    println!("## Aggregate over {} seed(s)", seeds.len());
    println!();
    println!(
        "| autoscale | mean wait [s] | mean turnaround [s] | nodes added/run | peak nodes | wasted [node·s]/run |"
    );
    println!("|---|---|---|---|---|---|");
    let mut off_wait: Option<f64> = None;
    for &mode in &modes {
        let of_mode: Vec<&ReplayResult> = experiments
            .iter()
            .zip(&results)
            .filter(|((_, m, _), _)| m.label() == mode.label())
            .map(|(_, r)| r)
            .collect();
        let n = of_mode.len() as f64;
        let wait = of_mode
            .iter()
            .map(|r| analysis::mean_waiting_secs(r, None))
            .sum::<f64>()
            / n;
        let turnaround = of_mode
            .iter()
            .map(|r| analysis::mean_turnaround_secs(r, None))
            .sum::<f64>()
            / n;
        let added = of_mode
            .iter()
            .filter_map(|r| r.elasticity().map(|m| m.nodes_added))
            .sum::<u64>() as f64
            / n;
        let peak = of_mode
            .iter()
            .filter_map(|r| analysis::peak_node_count(r))
            .max()
            .unwrap_or(0);
        let wasted = of_mode
            .iter()
            .map(|r| analysis::wasted_capacity_node_secs(r))
            .sum::<f64>()
            / n;
        println!(
            "| {} | {wait:.1} | {turnaround:.1} | {added:.1} | {peak} | {wasted:.0} |",
            mode.label()
        );
        if matches!(mode, Mode::Off) {
            off_wait = Some(wait);
        } else {
            let off = off_wait.expect("Mode::Off is swept first");
            assert!(
                wait < off,
                "autoscaling at {} did not lower the mean waiting time \
                 ({wait:.1}s vs off {off:.1}s)",
                mode.label()
            );
        }
    }
    println!();
    println!("autoscaling lowered the mean waiting time in every mode");
}

//! Rebalance experiment — live migration & EPC rebalancing at sweep
//! scale (the paper's §VIII future-work direction).
//!
//! Replays the same workloads with rebalancing off and on across several
//! thresholds and seeds via the parallel sweep, and compares per-node
//! EPC-load imbalance, migration counts, total migration downtime and
//! the turnaround cost of that downtime.
//!
//! ```text
//! cargo run --release -p sgx-orchestrator --bin exp_rebalance            # full sweep
//! cargo run --release -p sgx-orchestrator --bin exp_rebalance -- --smoke # CI-sized
//! cargo run --release -p sgx-orchestrator --bin exp_rebalance -- --list-policies
//! ```

use des::{SimDuration, SimTime};
use orchestrator::PolicyRegistry;
use sgx_orchestrator::Experiment;
use simulation::{analysis, RebalanceConfig, ReplayResult};

/// One swept configuration: rebalancing off, or on at a threshold.
#[derive(Debug, Clone, Copy)]
enum Mode {
    Off,
    On(f64),
}

impl Mode {
    fn label(self) -> String {
        match self {
            Mode::Off => "off".to_string(),
            Mode::On(threshold) => format!("on @ {threshold:.2}"),
        }
    }

    fn apply(self, experiment: Experiment) -> Experiment {
        match self {
            Mode::Off => experiment,
            Mode::On(threshold) => experiment.rebalance(RebalanceConfig::every(
                SimDuration::from_secs(60),
                threshold,
            )),
        }
    }
}

fn main() {
    if std::env::args().any(|a| a == "--list-policies") {
        print!("{}", PolicyRegistry::builtin().markdown_table());
        return;
    }
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (seeds, thresholds): (Vec<u64>, Vec<f64>) = if smoke {
        (vec![41], vec![0.2])
    } else {
        (vec![41, 42, 43], vec![0.1, 0.2, 0.3])
    };
    let mut modes = vec![Mode::Off];
    modes.extend(thresholds.iter().map(|&t| Mode::On(t)));

    // Same workload per seed in every mode: the experiment only differs
    // in the rebalance knob, so deltas are attributable to migration.
    let base = |seed: u64| {
        if smoke {
            Experiment::quick(seed).sgx_ratio(1.0)
        } else {
            Experiment::paper_replay(seed).sgx_ratio(1.0)
        }
    };
    let experiments: Vec<(u64, Mode, Experiment)> = seeds
        .iter()
        .flat_map(|&seed| {
            modes
                .iter()
                .map(move |&mode| (seed, mode, mode.apply(base(seed))))
        })
        .collect();

    let batch: Vec<Experiment> = experiments.iter().map(|(_, _, e)| e.clone()).collect();
    let results = Experiment::run_all(&batch);

    // Determinism spot-check: the first configuration, replayed again,
    // must be bit-identical (sweep order does not leak into results).
    let again = experiments[0].2.run();
    assert_eq!(
        again.runs(),
        results[0].runs(),
        "replay is not deterministic"
    );
    assert_eq!(again.end_time(), results[0].end_time());

    println!(
        "# EPC rebalancing sweep ({})",
        if smoke { "smoke" } else { "full" }
    );
    println!();
    println!(
        "| seed | rebalance | mean imbalance | peak imbalance | migrations | downtime [s] | mean wait [s] | mean turnaround [s] | makespan [s] | completed |"
    );
    println!("|---|---|---|---|---|---|---|---|---|---|");
    for ((seed, mode, _), result) in experiments.iter().zip(&results) {
        println!(
            "| {} | {} | {:.4} | {:.4} | {} | {:.1} | {:.1} | {:.1} | {:.0} | {} |",
            seed,
            mode.label(),
            analysis::mean_epc_imbalance(result),
            analysis::peak_epc_imbalance(result),
            analysis::migration_count(result),
            analysis::total_migration_downtime_secs(result),
            analysis::mean_waiting_secs(result, None),
            analysis::mean_turnaround_secs(result, None),
            result
                .end_time()
                .saturating_since(SimTime::ZERO)
                .as_secs_f64(),
            result.completed_count(),
        );
    }

    // Per-mode aggregate over seeds: the headline comparison.
    println!();
    println!("## Aggregate over {} seed(s)", seeds.len());
    println!();
    println!(
        "| rebalance | mean imbalance | migrations/run | downtime/run [s] | mean turnaround [s] |"
    );
    println!("|---|---|---|---|---|");
    let mut off_imbalance: Option<f64> = None;
    for &mode in &modes {
        let of_mode: Vec<&ReplayResult> = experiments
            .iter()
            .zip(&results)
            .filter(|((_, m, _), _)| m.label() == mode.label())
            .map(|(_, r)| r)
            .collect();
        let n = of_mode.len() as f64;
        let imbalance = of_mode
            .iter()
            .map(|r| analysis::mean_epc_imbalance(r))
            .sum::<f64>()
            / n;
        let migrations = of_mode
            .iter()
            .map(|r| analysis::migration_count(r))
            .sum::<u64>() as f64
            / n;
        let downtime = of_mode
            .iter()
            .map(|r| analysis::total_migration_downtime_secs(r))
            .sum::<f64>()
            / n;
        let turnaround = of_mode
            .iter()
            .map(|r| analysis::mean_turnaround_secs(r, None))
            .sum::<f64>()
            / n;
        println!(
            "| {} | {imbalance:.4} | {migrations:.1} | {downtime:.1} | {turnaround:.1} |",
            mode.label()
        );
        if matches!(mode, Mode::Off) {
            off_imbalance = Some(imbalance);
        } else {
            let off = off_imbalance.expect("Mode::Off is swept first");
            assert!(
                imbalance < off,
                "rebalancing at {} did not lower the mean EPC-load imbalance \
                 ({imbalance:.4} vs off {off:.4})",
                mode.label()
            );
        }
    }
    println!();
    println!("rebalancing lowered the mean per-node EPC-load imbalance in every mode");
}

//! The high-level experiment builder used by examples and benchmarks.

use borg_trace::{
    FrontendParams, FrontendRegistry, GeneratorConfig, Trace, TracePipeline, Workload,
    WorkloadParams,
};
use cluster::topology::ClusterSpec;
use sgx_sim::units::ByteSize;
use simulation::{
    replay, replay_stream, sweep, AutoscaleConfig, FaultPlan, MaliciousConfig, RebalanceConfig,
    ReplayConfig, ReplayResult, SweepProgress,
};

/// Which trace the experiment replays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePreset {
    /// A small one-hour trace (≈1–2 k jobs) that replays in well under a
    /// second — for examples and tests.
    Quick,
    /// The paper's §VI-B preparation: full-rate generation, slice
    /// `[6480 s, 10 080 s)`, every 1200th job → ≈663 replayed jobs.
    PaperReplay,
}

/// End-to-end experiment: generate → prepare → materialise → replay.
///
/// # Examples
///
/// ```
/// use sgx_orchestrator::Experiment;
/// use sgx_sim::units::ByteSize;
///
/// let result = Experiment::quick(7)
///     .sgx_ratio(1.0)
///     .epc_size(ByteSize::from_mib(64))
///     .run();
/// assert!(!result.timed_out());
/// ```
#[derive(Debug, Clone)]
pub struct Experiment {
    seed: u64,
    preset: TracePreset,
    sgx_ratio: f64,
    scheduler: String,
    epc_size: Option<ByteSize>,
    epc_total: Option<ByteSize>,
    enforce_limits: bool,
    malicious: Option<MaliciousConfig>,
    rebalance: Option<RebalanceConfig>,
    autoscale: Option<AutoscaleConfig>,
    faults: FaultPlan,
    frontend: Option<String>,
}

impl Experiment {
    /// A quick laptop-scale experiment.
    pub fn quick(seed: u64) -> Self {
        Experiment {
            seed,
            preset: TracePreset::Quick,
            sgx_ratio: 0.5,
            scheduler: orchestrator::SGX_BINPACK.to_string(),
            epc_size: None,
            epc_total: None,
            enforce_limits: true,
            malicious: None,
            rebalance: None,
            autoscale: None,
            faults: FaultPlan::none(),
            frontend: None,
        }
    }

    /// The paper's replay-scale experiment (≈663 jobs over one hour of
    /// submissions).
    pub fn paper_replay(seed: u64) -> Self {
        Experiment {
            preset: TracePreset::PaperReplay,
            ..Experiment::quick(seed)
        }
    }

    /// Fraction of jobs designated SGX-enabled (paper sweeps 0–100 %).
    ///
    /// # Panics
    ///
    /// Panics unless `ratio` lies in `[0, 1]`.
    pub fn sgx_ratio(mut self, ratio: f64) -> Self {
        assert!((0.0..=1.0).contains(&ratio), "ratio must be in [0, 1]");
        self.sgx_ratio = ratio;
        self
    }

    /// Default scheduler for the run (`sgx-binpack`, `sgx-spread` or
    /// `default`).
    pub fn scheduler(mut self, name: &str) -> Self {
        self.scheduler = name.to_string();
        self
    }

    /// Overrides each of the two SGX nodes' usable EPC.
    pub fn epc_size(mut self, usable: ByteSize) -> Self {
        self.epc_size = Some(usable);
        self.epc_total = None;
        self
    }

    /// Uses the §VI-D simulation cluster: a single SGX node carrying the
    /// whole simulated EPC (the Fig. 7 sweep labels runs by total EPC).
    pub fn epc_total(mut self, usable: ByteSize) -> Self {
        self.epc_total = Some(usable);
        self.epc_size = None;
        self
    }

    /// Enables or disables driver-side EPC limit enforcement (Fig. 11).
    pub fn limits(mut self, enforce: bool) -> Self {
        self.enforce_limits = enforce;
        self
    }

    /// Injects the Fig. 11 malicious squatters: one pod per SGX node
    /// declaring 1 EPC page and actually mapping `fraction` of its node's
    /// EPC.
    pub fn malicious(mut self, fraction: f64) -> Self {
        self.malicious = Some(MaliciousConfig::squatting(fraction));
        self
    }

    /// Enables periodic EPC rebalancing via live migration (§VIII).
    pub fn rebalance(mut self, rebalance: RebalanceConfig) -> Self {
        self.rebalance = Some(rebalance);
        self
    }

    /// Enables cluster + pod-group autoscaling: the replay grows and
    /// shrinks the node pool from queue pressure and reconciles any
    /// configured service groups (§IX).
    pub fn autoscale(mut self, autoscale: AutoscaleConfig) -> Self {
        self.autoscale = Some(autoscale);
        self
    }

    /// Injects metrics-pipeline faults (scrape drops, probe silences,
    /// delayed frames, shard write failures) into the replay.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Streams the workload from the named registry frontend
    /// (`borg-synthetic`, `alibaba-2017`, `diurnal-serving`,
    /// `adversarial-mix`) instead of materialising the preset trace.
    /// [`TracePreset::Quick`] maps to the frontend's smoke scale,
    /// [`TracePreset::PaperReplay`] to its full scale.
    ///
    /// # Panics
    ///
    /// Panics when `name` is not in [`FrontendRegistry::builtin`].
    pub fn frontend(mut self, name: &str) -> Self {
        assert!(
            FrontendRegistry::builtin().contains(name),
            "unknown frontend {name:?}; available: {:?}",
            FrontendRegistry::builtin().names()
        );
        self.frontend = Some(name.to_string());
        self
    }

    /// Parameters a registry frontend is built from for this experiment.
    pub fn frontend_params(&self) -> FrontendParams {
        let params = FrontendParams::new(self.seed, self.sgx_ratio);
        match self.preset {
            TracePreset::Quick => params.smoke(),
            TracePreset::PaperReplay => params,
        }
    }

    /// The prepared (sliced/sampled/rebased) trace this experiment replays.
    pub fn prepared_trace(&self) -> Trace {
        match self.preset {
            TracePreset::Quick => GeneratorConfig::small(self.seed).generate(),
            TracePreset::PaperReplay => {
                let raw = GeneratorConfig::replay_scale(self.seed).generate_sampled(1200);
                TracePipeline::paper().sample_every(1).prepare(&raw)
            }
        }
    }

    /// The materialised workload (trace × SGX designation × multipliers).
    pub fn workload(&self) -> Workload {
        let trace = self.prepared_trace();
        Workload::materialize(&trace, &WorkloadParams::paper(self.sgx_ratio, self.seed))
    }

    /// The replay configuration this experiment uses.
    pub fn replay_config(&self) -> ReplayConfig {
        let cluster = match (self.epc_size, self.epc_total) {
            (Some(usable), _) => ClusterSpec::paper_cluster_with_epc(usable),
            (None, Some(total)) => ClusterSpec::sim_cluster_with_total_epc(total),
            (None, None) => ClusterSpec::paper_cluster(),
        };
        let mut config = ReplayConfig::paper(self.seed)
            .with_cluster(cluster)
            .with_scheduler(&self.scheduler);
        if !self.enforce_limits {
            config = config.without_limits();
        }
        if let Some(mal) = self.malicious {
            config = config.with_malicious(mal);
        }
        if let Some(rebalance) = self.rebalance {
            config = config.with_rebalance(rebalance);
        }
        if let Some(autoscale) = &self.autoscale {
            config = config.with_autoscale(autoscale.clone());
        }
        if !self.faults.is_noop() {
            config = config.with_faults(self.faults.clone());
        }
        if let Some(name) = &self.frontend {
            config = config.with_frontend(name);
        }
        config
    }

    /// Runs the experiment: through the streaming engine when a
    /// [`frontend`](Self::frontend) is named, through the materialised
    /// workload otherwise (the two are bit-identical for the Borg
    /// generator; see `tests/frontend_props.rs` in `simulation`).
    pub fn run(&self) -> ReplayResult {
        let config = self.replay_config();
        match &config.frontend {
            Some(name) => {
                let mut frontend = FrontendRegistry::builtin()
                    .build(name, &self.frontend_params())
                    .expect("frontend names are validated by the builder");
                replay_stream(frontend.as_mut(), &config)
            }
            None => replay(&self.workload(), &config),
        }
    }

    /// Runs a batch of experiments on the parallel sweep, returning results
    /// in input order. Bit-identical to calling [`run`](Self::run) on each
    /// experiment sequentially.
    pub fn run_all(experiments: &[Experiment]) -> Vec<ReplayResult> {
        Experiment::run_all_with_progress(experiments, |_| {})
    }

    /// Like [`run_all`](Self::run_all) with a per-run completion callback
    /// (fires from worker threads, in completion order).
    ///
    /// # Panics
    ///
    /// Panics when an experiment names a streaming frontend: the sweep
    /// pre-materialises every workload, which is exactly what streaming
    /// avoids — run those through [`run`](Self::run) instead.
    pub fn run_all_with_progress<F>(experiments: &[Experiment], progress: F) -> Vec<ReplayResult>
    where
        F: Fn(SweepProgress) + Sync,
    {
        assert!(
            experiments.iter().all(|e| e.frontend.is_none()),
            "run_all sweeps materialised workloads; run streaming-frontend experiments via run()"
        );
        let jobs: Vec<sweep::SweepJob> = experiments
            .iter()
            .map(|exp| (exp.workload(), exp.replay_config()))
            .collect();
        sweep::run_all_with(&jobs, sweep::default_threads(jobs.len()), progress)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use borg_trace::JobKind;

    #[test]
    fn quick_experiment_runs() {
        let result = Experiment::quick(1).run();
        assert!(!result.timed_out());
        assert!(result.completed_count() > 0);
    }

    #[test]
    fn sgx_ratio_controls_workload_mix() {
        let none = Experiment::quick(2).sgx_ratio(0.0).workload();
        assert_eq!(none.sgx_count(), 0);
        let all = Experiment::quick(2).sgx_ratio(1.0).workload();
        assert_eq!(all.sgx_count(), all.len());
        let half = Experiment::quick(2).sgx_ratio(0.5).workload();
        let ratio = half.sgx_count() as f64 / half.len() as f64;
        assert!((ratio - 0.5).abs() < 0.06, "ratio={ratio}");
        // Same seed → same trace regardless of ratio.
        assert_eq!(none.len(), all.len());
    }

    #[test]
    fn replay_config_reflects_builders() {
        let exp = Experiment::quick(3)
            .scheduler(orchestrator::SGX_SPREAD)
            .epc_size(ByteSize::from_mib(64))
            .limits(false)
            .malicious(0.25);
        let config = exp.replay_config();
        assert_eq!(
            config.orchestrator.default_scheduler,
            orchestrator::SGX_SPREAD
        );
        assert!(!config.enforce_limits);
        assert_eq!(config.malicious.unwrap().fraction, 0.25);
        let cluster = cluster::topology::Cluster::build(&config.cluster);
        assert_eq!(cluster.total_epc(), ByteSize::from_mib(128));
    }

    #[test]
    fn experiments_are_reproducible() {
        let a = Experiment::quick(4).sgx_ratio(1.0).run();
        let b = Experiment::quick(4).sgx_ratio(1.0).run();
        assert_eq!(a.runs(), b.runs());
    }

    #[test]
    fn run_all_matches_individual_runs() {
        let experiments = [
            Experiment::quick(6).sgx_ratio(1.0),
            Experiment::quick(6)
                .sgx_ratio(0.5)
                .scheduler(orchestrator::SGX_SPREAD),
            Experiment::quick(7).epc_size(ByteSize::from_mib(64)),
        ];
        let batch = Experiment::run_all(&experiments);
        assert_eq!(batch.len(), experiments.len());
        for (result, exp) in batch.iter().zip(&experiments) {
            let solo = exp.run();
            assert_eq!(result.runs(), solo.runs());
            assert_eq!(result.end_time(), solo.end_time());
        }
    }

    #[test]
    fn rebalance_builder_reaches_the_replay() {
        let exp = Experiment::quick(8)
            .sgx_ratio(1.0)
            .rebalance(RebalanceConfig::every(des::SimDuration::from_secs(60), 0.1));
        assert_eq!(exp.replay_config().rebalance.unwrap().threshold, 0.1);
        let result = exp.run();
        assert!(result.migration_count() > 0);
        assert!(result.migration_downtime() > des::SimDuration::ZERO);
        // Off by default.
        assert!(Experiment::quick(8).replay_config().rebalance.is_none());
    }

    #[test]
    fn autoscale_builder_reaches_the_replay() {
        use orchestrator::autoscale::AutoscalerPolicy;

        let policy = AutoscalerPolicy::paper_defaults()
            .with_scale_up_wait(des::SimDuration::from_secs(10))
            .with_max_nodes(8);
        let exp = Experiment::quick(9).sgx_ratio(1.0).autoscale(
            AutoscaleConfig::every(des::SimDuration::from_secs(15), policy).with_audit(),
        );
        assert!(exp.replay_config().autoscale.is_some());
        let result = exp.run();
        assert!(!result.timed_out());
        let metrics = result.elasticity().expect("autoscaling enabled");
        assert!(metrics.peak_nodes >= 4);
        // Off by default.
        assert!(Experiment::quick(9).replay_config().autoscale.is_none());
        assert!(Experiment::quick(9).run().elasticity().is_none());
    }

    #[test]
    fn fault_builder_reaches_the_replay() {
        let plan = FaultPlan::none()
            .with_seed(9)
            .with_scrape_drops(0.25)
            .with_silence(simulation::ProbeSilence {
                node: "sgx-1".to_string(),
                from_secs: 120,
                until_secs: 900,
            });
        let exp = Experiment::quick(9).sgx_ratio(1.0).faults(plan.clone());
        assert_eq!(exp.replay_config().faults, plan);
        let result = exp.run();
        assert!(result.fault_stats().frames_dropped > 0);
        assert!(result.degraded_decisions() > 0);
        // Fault-free by default.
        assert!(Experiment::quick(9).replay_config().faults.is_noop());
    }

    #[test]
    fn frontend_builder_streams_and_stays_deterministic() {
        let exp = Experiment::quick(12)
            .sgx_ratio(0.75)
            .frontend(borg_trace::frontend::ALIBABA_2017);
        assert_eq!(
            exp.replay_config().frontend.as_deref(),
            Some("alibaba-2017")
        );
        let a = exp.run();
        let b = exp.run();
        assert!(!a.timed_out());
        assert!(a.completed_count() > 0);
        assert_eq!(a.runs(), b.runs());
        assert_eq!(a.end_time(), b.end_time());
        // The stream never held more than one job ahead of the clock.
        assert_eq!(a.peak_materialized_jobs(), 1);
        // Off by default.
        assert!(Experiment::quick(12).replay_config().frontend.is_none());
    }

    #[test]
    fn streaming_borg_frontend_matches_legacy_quick_run() {
        // Quick preset and the borg-synthetic smoke frontend use
        // different horizons, so compare the frontend against its own
        // materialised stream rather than against `run()`.
        let exp = Experiment::quick(13)
            .sgx_ratio(0.5)
            .frontend(borg_trace::frontend::BORG_SYNTHETIC);
        let result = exp.run();
        assert!(!result.timed_out());
        let terminal =
            result.completed_count() + result.denied_count() + result.unschedulable_count();
        assert_eq!(terminal, result.runs().len());
    }

    #[test]
    #[should_panic(expected = "unknown frontend")]
    fn unknown_frontend_panics_eagerly() {
        let _ = Experiment::quick(0).frontend("no-such-frontend");
    }

    #[test]
    #[should_panic(expected = "run_all")]
    fn run_all_rejects_streaming_frontends() {
        let exps = [Experiment::quick(1).frontend(borg_trace::frontend::BORG_SYNTHETIC)];
        let _ = Experiment::run_all(&exps);
    }

    #[test]
    fn workload_has_both_kinds_at_half_ratio() {
        let w = Experiment::quick(5).sgx_ratio(0.5).workload();
        assert!(w.iter().any(|j| j.kind == JobKind::Sgx));
        assert!(w.iter().any(|j| j.kind == JobKind::Standard));
    }

    #[test]
    #[should_panic(expected = "ratio")]
    fn bad_ratio_panics() {
        let _ = Experiment::quick(0).sgx_ratio(2.0);
    }
}

//! # sgx-orchestrator
//!
//! A Rust reproduction of **"SGX-Aware Container Orchestration for
//! Heterogeneous Clusters"** (Vaucher et al., ICDCS 2018): a Kubernetes-
//! style orchestrator that schedules SGX-enabled containers onto a
//! heterogeneous cluster using *measured* Enclave Page Cache usage, with
//! strict driver-side enforcement of per-pod EPC limits.
//!
//! The paper's stack needs SGX hardware, a patched kernel driver, a
//! Kubernetes cluster and the Google Borg trace; this workspace replaces
//! each with a faithful simulated substrate (see `DESIGN.md`) so the whole
//! system — and every figure of the paper's evaluation — runs
//! deterministically on a laptop.
//!
//! ## Crate map
//!
//! | layer | crate | contents |
//! |---|---|---|
//! | substrate | [`des`] | virtual time, event queue, seeded RNG, statistics |
//! | substrate | [`sgx_sim`] | EPC allocator, enclave lifecycle, cost model, modified `isgx` driver |
//! | substrate | [`tsdb`] | InfluxDB-style store + InfluxQL-subset engine |
//! | substrate | [`borg_trace`] | calibrated synthetic Borg trace + §VI-B pipeline |
//! | substrate | [`stress`] | STRESS-SGX workload models |
//! | node side | [`cluster`] | machines, Kubelet, device plugin, probes |
//! | master side | [`orchestrator`] | FCFS queue, cluster snapshots, filter/score scheduling framework |
//! | harness | [`simulation`] | discrete-event replay + analysis |
//!
//! ## Quickstart
//!
//! The [`Experiment`] builder wires the full pipeline (generate trace →
//! prepare → materialise workload → replay):
//!
//! ```
//! use sgx_orchestrator::Experiment;
//!
//! // A quick laptop-scale run: 50 % SGX jobs under the binpack scheduler.
//! let result = Experiment::quick(42).sgx_ratio(0.5).run();
//! assert!(result.completed_count() > 0);
//! println!(
//!     "mean waiting time: {:.1} s",
//!     simulation::analysis::mean_waiting_secs(&result, None)
//! );
//! ```
//!
//! Lower-level pieces stay accessible for custom setups:
//!
//! ```
//! use sgx_orchestrator::prelude::*;
//!
//! let mut orch = Orchestrator::new(ClusterSpec::paper_cluster(), OrchestratorConfig::paper());
//! let uid = orch.submit(
//!     PodSpec::builder("enclave-job").sgx_resources(ByteSize::from_mib(32)).build(),
//!     SimTime::ZERO,
//! );
//! let outcomes = orch.scheduler_pass(SimTime::from_secs(5));
//! assert_eq!(outcomes[0].uid, uid);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod experiment;

pub use experiment::{Experiment, TracePreset};

/// One-stop imports for typical use.
pub mod prelude {
    pub use borg_trace::{
        FrontendParams, FrontendRegistry, GeneratorConfig, JobKind, Trace, TraceFrontend,
        TracePipeline, Workload, WorkloadEvent, WorkloadParams,
    };
    pub use cluster::api::{NodeName, PodSpec, PodUid, ResourceRequirements, Resources};
    pub use cluster::machine::MachineSpec;
    pub use cluster::node::{Node, NodeRole};
    pub use cluster::topology::{Cluster, ClusterSpec};
    pub use des::{SimDuration, SimTime};
    pub use orchestrator::billing::{Invoice, PriceSheet};
    pub use orchestrator::{
        ClusterSnapshot, Orchestrator, OrchestratorConfig, PodOutcome, PolicyPipeline,
        PolicyRegistry, SchedulingCycle, DEFAULT_SCHEDULER, SGX_BINPACK, SGX_SPREAD,
    };
    pub use sgx_sim::attestation::{Aesm, Measurement, QuoteVerdict, Signer};
    pub use sgx_sim::migration::MigrationKey;
    pub use sgx_sim::units::{ByteSize, EpcPages};
    pub use sgx_sim::SgxVersion;
    pub use simulation::{
        online_channel, replay, replay_stream, MaliciousConfig, NodeDrain, NodeFailure,
        OnlineReport, OnlineServer, RebalanceConfig, ReplayConfig, ReplayResult,
    };
    pub use stress::Stressor;

    pub use crate::{Experiment, TracePreset};
}

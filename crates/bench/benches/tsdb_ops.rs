//! Time-series database throughput: ingestion and the paper's Listing 1
//! sliding-window query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use des::SimTime;
use tsdb::{Database, Point};

fn populated_db(pods: usize, samples: usize) -> Database {
    let mut db = Database::new();
    for s in 0..samples {
        for p in 0..pods {
            db.insert(
                Point::new("sgx/epc", SimTime::from_secs(s as u64 * 10), (p + 1) as f64 * 4096.0)
                    .with_tag("pod_name", format!("pod-{p}"))
                    .with_tag("nodename", format!("node-{}", p % 4)),
            );
        }
    }
    db
}

fn bench_insert(c: &mut Criterion) {
    c.bench_function("tsdb/insert_point", |b| {
        let mut db = Database::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            db.insert(
                Point::new("sgx/epc", SimTime::from_secs(t), 4096.0)
                    .with_tag("pod_name", "pod-1")
                    .with_tag("nodename", "node-1"),
            );
        });
    });
}

fn bench_listing1(c: &mut Criterion) {
    let query = tsdb::influxql::parse(
        r#"SELECT SUM(epc) AS epc FROM
           (SELECT MAX(value) AS epc FROM "sgx/epc"
            WHERE value <> 0 AND time >= now() - 25s
            GROUP BY pod_name, nodename)
           GROUP BY nodename"#,
    )
    .expect("Listing 1 parses");

    let mut group = c.benchmark_group("tsdb/listing1_query");
    for pods in [10usize, 100, 1000] {
        let db = populated_db(pods, 30);
        let now = SimTime::from_secs(310);
        group.bench_with_input(BenchmarkId::from_parameter(pods), &db, |b, db| {
            b.iter(|| black_box(db.query(black_box(&query), now)))
        });
    }
    group.finish();
}

fn bench_parse(c: &mut Criterion) {
    c.bench_function("tsdb/parse_listing1", |b| {
        b.iter(|| {
            black_box(
                tsdb::influxql::parse(
                    r#"SELECT SUM(epc) AS epc FROM
                       (SELECT MAX(value) AS epc FROM "sgx/epc"
                        WHERE value <> 0 AND time >= now() - 25s
                        GROUP BY pod_name, nodename)
                       GROUP BY nodename"#,
                )
                .unwrap(),
            )
        })
    });
}

criterion_group!(benches, bench_insert, bench_listing1, bench_parse);
criterion_main!(benches);

//! Time-series database throughput: ingestion and the paper's Listing 1
//! sliding-window query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use des::{SimDuration, SimTime};
use tsdb::{Database, Point, WindowedCache};

fn populated_db(pods: usize, samples: usize) -> Database {
    let mut db = Database::new();
    for s in 0..samples {
        for p in 0..pods {
            db.insert(
                Point::new(
                    "sgx/epc",
                    SimTime::from_secs(s as u64 * 10),
                    (p + 1) as f64 * 4096.0,
                )
                .with_tag("pod_name", format!("pod-{p}"))
                .with_tag("nodename", format!("node-{}", p % 4)),
            );
        }
    }
    db
}

fn bench_insert(c: &mut Criterion) {
    c.bench_function("tsdb/insert_point", |b| {
        let mut db = Database::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            db.insert(
                Point::new("sgx/epc", SimTime::from_secs(t), 4096.0)
                    .with_tag("pod_name", "pod-1")
                    .with_tag("nodename", "node-1"),
            );
        });
    });
}

fn bench_listing1(c: &mut Criterion) {
    let query = tsdb::influxql::parse(
        r#"SELECT SUM(epc) AS epc FROM
           (SELECT MAX(value) AS epc FROM "sgx/epc"
            WHERE value <> 0 AND time >= now() - 25s
            GROUP BY pod_name, nodename)
           GROUP BY nodename"#,
    )
    .expect("Listing 1 parses");

    let mut group = c.benchmark_group("tsdb/listing1_query");
    for pods in [10usize, 100, 1000] {
        let db = populated_db(pods, 30);
        let now = SimTime::from_secs(310);
        group.bench_with_input(BenchmarkId::from_parameter(pods), &db, |b, db| {
            b.iter(|| black_box(db.query(black_box(&query), now)))
        });
    }
    group.finish();
}

/// `pods` series with one sample per second for `seconds` seconds — the
/// history an orchestrator accumulates at the paper's probe cadence.
fn history_db(pods: usize, seconds: u64) -> Database {
    let mut db = Database::new();
    for s in 0..seconds {
        tick_insert(&mut db, pods, SimTime::from_secs(s));
    }
    db
}

fn tick_insert(db: &mut Database, pods: usize, now: SimTime) {
    for p in 0..pods {
        db.insert(
            Point::new("sgx/epc", now, ((p + 1) * 4096) as f64)
                .with_tag("pod_name", format!("pod-{p}"))
                .with_tag("nodename", format!("node-{}", p % 4)),
        );
    }
}

/// The orchestrator's steady state: every tick appends one sample per pod
/// and re-evaluates Listing 1 over the trailing 25 s window, against
/// 10 minutes of accumulated 1 s-period history. Compares the naive
/// full-scan executor, the time-bounded streaming scan, and the
/// incremental [`WindowedCache`] — all three answer identically; only the
/// work per tick differs (O(history) vs O(log history + window) vs
/// O(new samples)).
fn bench_listing1_per_tick(c: &mut Criterion) {
    let query = tsdb::influxql::parse(
        r#"SELECT SUM(epc) AS epc FROM
           (SELECT MAX(value) AS epc FROM "sgx/epc"
            WHERE value <> 0 AND time >= now() - 25s
            GROUP BY pod_name, nodename)
           GROUP BY nodename"#,
    )
    .expect("Listing 1 parses");
    const PODS: usize = 20;
    const HISTORY_SECS: u64 = 600;

    let mut group = c.benchmark_group("tsdb/listing1_per_tick");
    group.bench_function("full_scan", |b| {
        let mut db = history_db(PODS, HISTORY_SECS);
        let mut now = SimTime::from_secs(HISTORY_SECS);
        b.iter(|| {
            now += SimDuration::from_secs(1);
            tick_insert(&mut db, PODS, now);
            black_box(db.query_full_scan(black_box(&query), now))
        });
    });
    group.bench_function("streaming", |b| {
        let mut db = history_db(PODS, HISTORY_SECS);
        let mut now = SimTime::from_secs(HISTORY_SECS);
        b.iter(|| {
            now += SimDuration::from_secs(1);
            tick_insert(&mut db, PODS, now);
            black_box(db.query(black_box(&query), now))
        });
    });
    group.bench_function("cached", |b| {
        let mut db = history_db(PODS, HISTORY_SECS);
        let mut cache = WindowedCache::new();
        let mut now = SimTime::from_secs(HISTORY_SECS);
        b.iter(|| {
            now += SimDuration::from_secs(1);
            tick_insert(&mut db, PODS, now);
            black_box(cache.query(&db, black_box(&query), now))
        });
    });
    group.finish();
}

fn bench_parse(c: &mut Criterion) {
    c.bench_function("tsdb/parse_listing1", |b| {
        b.iter(|| {
            black_box(
                tsdb::influxql::parse(
                    r#"SELECT SUM(epc) AS epc FROM
                       (SELECT MAX(value) AS epc FROM "sgx/epc"
                        WHERE value <> 0 AND time >= now() - 25s
                        GROUP BY pod_name, nodename)
                       GROUP BY nodename"#,
                )
                .unwrap(),
            )
        })
    });
}

criterion_group!(
    benches,
    bench_insert,
    bench_listing1,
    bench_listing1_per_tick,
    bench_parse
);
criterion_main!(benches);

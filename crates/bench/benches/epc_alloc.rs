//! EPC allocator and driver admission throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use sgx_sim::driver::SgxDriver;
use sgx_sim::epc::{Epc, EpcConfig};
use sgx_sim::units::EpcPages;
use sgx_sim::{CgroupPath, Pid};

fn bench_commit_release(c: &mut Criterion) {
    let mut group = c.benchmark_group("epc/commit_release");
    for pages in [64u64, 1024, 8192] {
        group.bench_with_input(BenchmarkId::from_parameter(pages), &pages, |b, &pages| {
            let mut epc = Epc::new(EpcConfig::sgx1_default());
            let enclave = epc.register_enclave();
            b.iter(|| {
                epc.commit(enclave, EpcPages::new(pages)).unwrap();
                epc.release(enclave, EpcPages::new(pages)).unwrap();
                black_box(epc.free_pages())
            });
        });
    }
    group.finish();
}

fn bench_paging_pressure(c: &mut Criterion) {
    c.bench_function("epc/overcommit_eviction", |b| {
        b.iter_with_setup(
            || {
                let mut epc = Epc::new(EpcConfig::sgx1_default());
                let a = epc.register_enclave();
                let v = epc.register_enclave();
                epc.commit(a, EpcPages::new(20_000)).unwrap();
                (epc, v)
            },
            |(mut epc, victim)| {
                // Forces ~16 k evictions.
                epc.commit(victim, EpcPages::new(20_000)).unwrap();
                black_box(epc.total_evictions())
            },
        );
    });
}

fn bench_enclave_lifecycle(c: &mut Criterion) {
    c.bench_function("driver/enclave_lifecycle", |b| {
        let mut driver = SgxDriver::sgx1_default();
        let pod = CgroupPath::new("/kubepods/bench");
        driver.set_pod_limit(&pod, EpcPages::new(10_000)).unwrap();
        b.iter(|| {
            let e = driver.create_enclave(Pid::new(1), pod.clone());
            driver.add_pages(e, EpcPages::new(2048)).unwrap();
            driver.init_enclave(e).unwrap();
            driver.destroy_enclave(e).unwrap();
            black_box(driver.sgx_nr_free_pages())
        });
    });
}

fn bench_admission_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("driver/admission_denied");
    group.bench_function("per_init", |b| {
        let mut driver = SgxDriver::sgx1_default();
        let pod = CgroupPath::new("/kubepods/limited");
        driver.set_pod_limit(&pod, EpcPages::ONE).unwrap();
        b.iter(|| {
            let e = driver.create_enclave(Pid::new(1), pod.clone());
            driver.add_pages(e, EpcPages::new(256)).unwrap();
            let denied = driver.init_enclave(e).is_err();
            driver.destroy_enclave(e).unwrap();
            black_box(denied)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_commit_release,
    bench_paging_pressure,
    bench_enclave_lifecycle,
    bench_admission_check
);
criterion_main!(benches);

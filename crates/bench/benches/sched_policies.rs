//! Placement-decision latency: binpack vs spread vs the stock scheduler,
//! as the cluster grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cluster::api::PodSpec;
use cluster::machine::MachineSpec;
use cluster::node::NodeRole;
use cluster::topology::{Cluster, ClusterSpec};
use des::{SimDuration, SimTime};
use orchestrator::metrics::ClusterView;
use orchestrator::{PlacementPolicy, SchedulerKind};
use sgx_sim::units::ByteSize;
use tsdb::Database;

fn cluster_view(nodes: usize) -> ClusterView {
    let mut spec = ClusterSpec::new();
    for i in 0..nodes {
        let machine = if i % 2 == 0 {
            MachineSpec::sgx_node()
        } else {
            MachineSpec::dell_r330()
        };
        spec = spec.with_node(format!("node-{i:03}"), machine, NodeRole::Worker);
    }
    let cluster = Cluster::build(&spec);
    ClusterView::capture(
        &cluster,
        &Database::new(),
        SimTime::from_secs(30),
        SimDuration::from_secs(25),
    )
}

fn bench_placement(c: &mut Criterion) {
    let sgx_pod = PodSpec::builder("sgx")
        .sgx_resources(ByteSize::from_mib(16))
        .build();
    let std_pod = PodSpec::builder("std")
        .memory_resources(ByteSize::from_gib(2))
        .build();

    let mut group = c.benchmark_group("placement_decision");
    for nodes in [4usize, 16, 64, 256] {
        let view = cluster_view(nodes);
        for (name, kind) in [
            ("binpack", SchedulerKind::SgxAware(PlacementPolicy::Binpack)),
            ("spread", SchedulerKind::SgxAware(PlacementPolicy::Spread)),
            ("default", SchedulerKind::KubeDefault),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{name}/sgx_pod"), nodes),
                &view,
                |b, view| b.iter(|| black_box(kind.place(black_box(&sgx_pod), view))),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{name}/std_pod"), nodes),
                &view,
                |b, view| b.iter(|| black_box(kind.place(black_box(&std_pod), view))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_placement);
criterion_main!(benches);

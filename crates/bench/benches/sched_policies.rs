//! Placement-decision latency for every registered scheduling pipeline,
//! as the cluster grows.
//!
//! Each sample snapshots nothing: the [`ClusterSnapshot`] is frozen once
//! per cluster size and every iteration runs one `place()` through the
//! pipeline's filter chain and score stages, mirroring what a scheduler
//! pass pays per pending pod.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cluster::api::PodSpec;
use cluster::machine::MachineSpec;
use cluster::node::NodeRole;
use cluster::topology::{Cluster, ClusterSpec};
use des::{SimDuration, SimTime};
use orchestrator::{ClusterSnapshot, PolicyRegistry};
use sgx_sim::units::ByteSize;
use tsdb::Database;

fn snapshot(nodes: usize) -> ClusterSnapshot {
    let mut spec = ClusterSpec::new();
    for i in 0..nodes {
        let machine = if i % 2 == 0 {
            MachineSpec::sgx_node()
        } else {
            MachineSpec::dell_r330()
        };
        spec = spec.with_node(format!("node-{i:03}"), machine, NodeRole::Worker);
    }
    let cluster = Cluster::build(&spec);
    ClusterSnapshot::capture(
        &cluster,
        &Database::new(),
        SimTime::from_secs(30),
        SimDuration::from_secs(25),
    )
}

fn bench_placement(c: &mut Criterion) {
    let sgx_pod = PodSpec::builder("sgx")
        .sgx_resources(ByteSize::from_mib(16))
        .build();
    let std_pod = PodSpec::builder("std")
        .memory_resources(ByteSize::from_gib(2))
        .build();

    let registry = PolicyRegistry::builtin();
    let mut group = c.benchmark_group("placement_decision");
    for nodes in [4usize, 16, 64, 256] {
        let snap = snapshot(nodes);
        for name in registry.names() {
            let pipeline = registry.by_name(&name).expect("listed names resolve");
            group.bench_with_input(
                BenchmarkId::new(format!("{name}/sgx_pod"), nodes),
                snap.nodes(),
                |b, nodes| b.iter(|| black_box(pipeline.place(black_box(&sgx_pod), nodes))),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{name}/std_pod"), nodes),
                snap.nodes(),
                |b, nodes| b.iter(|| black_box(pipeline.place(black_box(&std_pod), nodes))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_placement);
criterion_main!(benches);

//! Ingestion-path micro-benchmarks: the per-point seed path (one tag-set
//! allocation per sample) against the batched [`PointBatch`] transport,
//! into the single-writer [`Database`] and the sharded concurrent store
//! at 1/4/8 shards.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use des::SimTime;
use tsdb::{Database, Point, PointBatch, ShardedDatabase};

const PODS: usize = 20;

/// One scrape's worth of per-point inserts — the seed transport: every
/// point clones the measurement and both tag strings.
fn insert_points(db: &mut Database, now: SimTime) {
    for p in 0..PODS {
        db.insert(
            Point::new("sgx/epc", now, ((p + 1) * 4096) as f64)
                .with_tag("pod_name", format!("pod-{p}"))
                .with_tag("nodename", "node-0"),
        );
    }
}

/// The same scrape as one wire frame: shared tags stored once, rows carry
/// only the pod name and value.
fn scrape_batch(now: SimTime) -> PointBatch {
    let mut batch =
        PointBatch::new("sgx/epc", "pod_name", now).with_shared_tag("nodename", "node-0");
    for p in 0..PODS {
        batch.push(format!("pod-{p}"), ((p + 1) * 4096) as f64);
    }
    batch
}

fn bench_transport(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingest/transport");
    group.bench_function("per_point", |b| {
        let mut db = Database::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            insert_points(&mut db, SimTime::from_secs(t));
        });
    });
    group.bench_function("batched", |b| {
        let mut db = Database::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            db.insert_batch(black_box(&scrape_batch(SimTime::from_secs(t))));
        });
    });
    group.finish();
}

fn bench_sharded(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingest/sharded_batch");
    for shards in [1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(shards),
            &shards,
            |b, &shards| {
                let db = ShardedDatabase::new(shards);
                let mut t = 0u64;
                b.iter(|| {
                    t += 1;
                    db.insert_batch(black_box(&scrape_batch(SimTime::from_secs(t))));
                });
            },
        );
    }
    group.finish();
}

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingest/wire");
    let batch = scrape_batch(SimTime::from_secs(1));
    group.bench_function("encode_batch", |b| {
        b.iter(|| black_box(tsdb::wire::encode_batch(black_box(&batch))))
    });
    let frame = tsdb::wire::encode_batch(&batch);
    group.bench_function("decode_batch", |b| {
        b.iter(|| black_box(tsdb::wire::decode_batch(black_box(&frame)).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_transport, bench_sharded, bench_wire);
criterion_main!(benches);

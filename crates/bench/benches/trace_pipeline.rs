//! Synthetic-trace generation and preparation throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use borg_trace::{GeneratorConfig, TracePipeline, Workload, WorkloadParams};
use des::SimTime;

fn bench_generate(c: &mut Criterion) {
    c.bench_function("trace/generate_small", |b| {
        b.iter(|| black_box(GeneratorConfig::small(7).generate()))
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let trace = GeneratorConfig::small(7).generate();
    c.bench_function("trace/pipeline_slice_sample", |b| {
        let pipeline = TracePipeline::new()
            .slice(SimTime::from_secs(600), SimTime::from_secs(3000))
            .sample_every(3)
            .rebase();
        b.iter(|| black_box(pipeline.prepare(black_box(&trace))))
    });
}

fn bench_materialize(c: &mut Criterion) {
    let trace = GeneratorConfig::small(7).generate();
    let params = WorkloadParams::paper(0.5, 7);
    c.bench_function("trace/materialize_workload", |b| {
        b.iter(|| black_box(Workload::materialize(black_box(&trace), &params)))
    });
}

fn bench_csv_round_trip(c: &mut Criterion) {
    let trace = GeneratorConfig::small(7).generate();
    let text = borg_trace::csv::to_csv(&trace);
    c.bench_function("trace/csv_parse", |b| {
        b.iter(|| black_box(borg_trace::csv::from_csv(black_box(&text)).unwrap()))
    });
}

criterion_group!(
    benches,
    bench_generate,
    bench_pipeline,
    bench_materialize,
    bench_csv_round_trip
);
criterion_main!(benches);

//! Fig. 7 — total memory requested by pending pods over time, for
//! simulated EPC sizes of 32, 64, 128 and 256 MiB.
//!
//! The paper replays the prepared trace (100 % SGX jobs, binpack) against
//! simulated clusters whose SGX nodes carry different EPC sizes and plots
//! the queued-EPC backlog over time. Reported makespans: 4 h 47 m
//! (32 MiB), 2 h 47 m (64 MiB), 1 h 22 m (128 MiB), 1 h 00 m (256 MiB —
//! no contention at all).

use bench::{fmt_hm, run_experiments, section, table};
use des::{SimDuration, SimTime};
use sgx_orchestrator::Experiment;
use sgx_sim::units::ByteSize;

fn main() {
    let seed = 42;
    let sizes = [32u64, 64, 128, 256];
    let paper_makespans = ["4h47m", "2h47m", "1h22m", "1h00m"];

    section("Fig. 7: pending EPC requests over time per simulated EPC size");
    let experiments: Vec<Experiment> = sizes
        .iter()
        .map(|&mib| {
            Experiment::paper_replay(seed)
                .sgx_ratio(1.0)
                .epc_total(ByteSize::from_mib(mib))
        })
        .collect();
    let results: Vec<_> = sizes
        .iter()
        .copied()
        .zip(run_experiments(&experiments))
        .collect();

    // The backlog series, one column per EPC size, max within 20 min
    // buckets (the paper's x-axis spans 0–300 min).
    let bucket = SimDuration::from_mins(20);
    let horizon = results
        .iter()
        .map(|(_, r)| r.end_time())
        .max()
        .unwrap_or(SimTime::ZERO);
    let mut rows = Vec::new();
    let mut t = SimTime::ZERO;
    while t <= horizon {
        let mut row = vec![format!("{}", t.as_secs() / 60)];
        for (_, result) in &results {
            let window_max = result
                .pending_epc_series()
                .points()
                .iter()
                .filter(|&&(pt, _)| pt >= t && pt < t + bucket)
                .map(|&(_, v)| v)
                .fold(0.0_f64, f64::max);
            row.push(format!("{window_max:.0}"));
        }
        rows.push(row);
        t += bucket;
    }
    table(
        &[
            "t [min]",
            "32 MiB [MiB]",
            "64 MiB [MiB]",
            "128 MiB [MiB]",
            "256 MiB [MiB]",
        ],
        &rows,
    );

    section("Makespans (batch completion)");
    let rows: Vec<Vec<String>> = results
        .iter()
        .zip(paper_makespans)
        .map(|((mib, result), paper)| {
            vec![
                format!("{mib}"),
                fmt_hm(result.end_time().saturating_since(SimTime::ZERO)),
                paper.to_string(),
                format!("{:.0}", result.pending_epc_series().peak().unwrap_or(0.0)),
                result.unschedulable_count().to_string(),
            ]
        })
        .collect();
    table(
        &[
            "EPC [MiB]",
            "measured",
            "paper",
            "peak backlog [MiB]",
            "unschedulable",
        ],
        &rows,
    );
}

//! Fig. 11 — waiting times of honest jobs when malicious containers are
//! deployed, with and without strict EPC limit enforcement.
//!
//! The malicious containers (one per SGX node) declare a single EPC page
//! but map 25 % or 50 % of their node's EPC. Paper observations: without
//! enforcement honest waits grow with the stolen fraction; with
//! enforcement the attack is annihilated — and the run even beats the
//! trace-only baseline because the 44 over-using trace jobs are killed at
//! launch too.

use bench::{quantile_headers, quantile_row, run_experiments, section, table};
use sgx_orchestrator::Experiment;
use simulation::analysis::waiting_cdf;

fn main() {
    let seed = 42;
    let base = || Experiment::paper_replay(seed).sgx_ratio(1.0);

    section("Fig. 11: honest-job waiting times with malicious containers [s]");
    let runs: Vec<(&str, sgx_orchestrator::Experiment)> = vec![
        ("limits on,  50% EPC stolen", base().malicious(0.5)),
        ("limits off, trace jobs only", base().limits(false)),
        (
            "limits off, 25% EPC stolen",
            base().limits(false).malicious(0.25),
        ),
        (
            "limits off, 50% EPC stolen",
            base().limits(false).malicious(0.5),
        ),
    ];
    let experiments: Vec<Experiment> = runs.iter().map(|(_, exp)| exp.clone()).collect();
    let results = run_experiments(&experiments);

    let mut rows = Vec::new();
    let mut denied_with_limits = 0;
    for ((label, _), result) in runs.iter().zip(&results) {
        let cdf = waiting_cdf(result, None);
        rows.push(quantile_row(label, &cdf));
        if label.starts_with("limits on") {
            denied_with_limits = result.denied_count();
        }
    }
    table(&quantile_headers(), &rows);

    println!();
    println!(
        "  jobs killed at launch with limits on: {denied_with_limits} \
         (malicious pods + over-using trace jobs; paper: 44/663 trace jobs over-use)"
    );
    println!(
        "  paper: limits-on ≈ (or better than) trace-only; limits-off degrades with the \
         stolen fraction"
    );
}

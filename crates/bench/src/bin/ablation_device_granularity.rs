//! Ablation — device-plugin granularity: one resource item per EPC page
//! (the paper's scheme, §V-A) vs one item per `/dev/isgx` device file.
//!
//! The naive per-device registration limits every node to a single SGX
//! pod at a time. This ablation emulates it by inflating each SGX pod's
//! request to the node's full usable EPC (a pod then owns the whole
//! "device"), and compares throughput against per-page granularity.

use bench::{fmt_hm, run_jobs, section, table};
use borg_trace::{JobKind, Workload};
use des::SimTime;
use sgx_orchestrator::Experiment;
use sgx_sim::units::USABLE_EPC;
use simulation::analysis::mean_waiting_secs;

fn main() {
    let seed = 42;
    let exp = Experiment::quick(seed).sgx_ratio(0.3);
    let per_page = exp.workload();

    // Per-device emulation: an SGX pod's request covers the whole EPC, so
    // exactly one fits per node; its actual usage stays unchanged.
    let per_device: Workload = per_page
        .iter()
        .map(|job| {
            let mut job = *job;
            if job.kind == JobKind::Sgx {
                job.mem_request = USABLE_EPC;
            }
            job
        })
        .collect();

    section("Ablation: device-plugin granularity (30 % SGX jobs, quick trace)");
    let labels = ["per page (paper)", "per device"];
    let jobs: Vec<simulation::SweepJob> = [&per_page, &per_device]
        .into_iter()
        .map(|workload| (workload.clone(), exp.replay_config()))
        .collect();
    let results = run_jobs(&jobs);

    let mut rows = Vec::new();
    for (label, result) in labels.iter().zip(&results) {
        rows.push(vec![
            label.to_string(),
            format!("{:.0}", mean_waiting_secs(result, Some(JobKind::Sgx))),
            format!("{:.0}", mean_waiting_secs(result, Some(JobKind::Standard))),
            result.completed_count().to_string(),
            fmt_hm(result.end_time().saturating_since(SimTime::ZERO)),
        ]);
    }
    table(
        &[
            "granularity",
            "SGX mean wait [s]",
            "std mean wait [s]",
            "completed",
            "makespan",
        ],
        &rows,
    );
    println!();
    println!(
        "  expected: per-device serialises SGX pods (≤1 per node), multiplying SGX waits \
         and stretching the makespan — \"exposing only one resource item would have \
         utterly limited the usefulness of our contribution\" (§V-A)"
    );
}

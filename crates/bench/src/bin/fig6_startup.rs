//! Fig. 6 — startup time of SGX processes for varying EPC sizes.
//!
//! The paper measures 60 runs per requested-EPC size and reports two
//! components with 95 % confidence intervals: PSW/AESM service startup
//! (≈100 ms, flat) and enclave memory allocation (1.6 ms/MiB below the
//! usable-EPC limit; 200 ms + 4.5 ms/MiB above it).

use bench::{section, table};
use des::rng::seeded_rng;
use des::stats::RunningStats;
use sgx_sim::cost::CostModel;
use sgx_sim::units::{ByteSize, USABLE_EPC};

fn main() {
    let model = CostModel::paper_defaults();
    let mut rng = seeded_rng(42);
    let runs = 60;

    section("Fig. 6: startup time of SGX processes for varying requested EPC");
    let sizes_mib: [f64; 9] = [0.0, 16.0, 32.0, 48.0, 64.0, 80.0, 93.5, 112.0, 128.0];
    let rows: Vec<Vec<String>> = sizes_mib
        .iter()
        .map(|&mib| {
            let request = ByteSize::from_mib_f64(mib);
            let mut psw = RunningStats::new();
            let mut alloc = RunningStats::new();
            for _ in 0..runs {
                psw.push(model.psw_startup_jittered(&mut rng).as_millis_f64());
                alloc.push(model.allocation_time(request, USABLE_EPC).as_millis_f64());
            }
            vec![
                format!("{mib:.1}"),
                format!("{:.1} ± {:.1}", psw.mean(), psw.ci95_half_width()),
                format!("{:.1}", alloc.mean()),
                format!("{:.1}", psw.mean() + alloc.mean()),
            ]
        })
        .collect();
    table(
        &[
            "requested EPC [MiB]",
            "PSW startup [ms] (95% CI)",
            "allocation [ms]",
            "total [ms]",
        ],
        &rows,
    );

    // The two linear regimes, recovered from the model the same way the
    // paper fits its measurements.
    let below = (model
        .allocation_time(ByteSize::from_mib(64), USABLE_EPC)
        .as_millis_f64()
        - model
            .allocation_time(ByteSize::from_mib(32), USABLE_EPC)
            .as_millis_f64())
        / 32.0;
    let above = (model
        .allocation_time(ByteSize::from_mib(128), USABLE_EPC)
        .as_millis_f64()
        - model
            .allocation_time(ByteSize::from_mib(112), USABLE_EPC)
            .as_millis_f64())
        / 16.0;
    let jump = model
        .allocation_time(ByteSize::from_mib_f64(94.0), USABLE_EPC)
        .as_millis_f64()
        - model
            .allocation_time(ByteSize::from_mib_f64(93.5), USABLE_EPC)
            .as_millis_f64();
    println!();
    println!("  allocation slope below usable EPC: {below:.2} ms/MiB (paper: 1.6)");
    println!("  allocation slope above usable EPC: {above:.2} ms/MiB (paper: 4.5)");
    println!("  fixed jump at the usable-EPC limit: ≈{jump:.0} ms (paper: ≈200)");
    println!("  standard jobs: < 1 ms (omitted, as in the paper)");
}

//! Full-trace-scale autoscaled replay: the Borg cell's 135 k concurrent
//! jobs thrown at the five-node paper cluster with the cluster
//! autoscaler allowed to grow the SGX tier into the cell's
//! 12,500-machine class.
//!
//! The replay starts from the paper's tiny baseline, so the whole node
//! pool beyond it is autoscaler-built: the benchmark measures how fast
//! the discrete-event loop absorbs a multi-million-pod-event trace
//! while the controller adds thousands of nodes, reconciles a
//! long-running service group, and drains idle capacity back down.
//!
//! Prints a JSON document (see `BENCH_autoscale.json` at the repo root
//! for a recorded run) to stdout:
//!
//! ```sh
//! cargo run --release -p bench --bin bench_autoscale > BENCH_autoscale.json
//! ```
//!
//! `--smoke` replays a reduced trace (≈2 k concurrency over two
//! minutes) and asserts the invariants CI cares about: the replay
//! terminates with every pod terminal, the autoscaler actually grew
//! the cluster beyond the baseline, scale-up latency was recorded, and
//! a second replay is bit-identical.

use std::time::Instant;

use borg_trace::{BorgSynthetic, GeneratorConfig, WorkloadParams};
use des::{SimDuration, SimTime};
use orchestrator::autoscale::{AutoscalerPolicy, PodGroupSpec};
use sgx_sim::units::ByteSize;
use simulation::{analysis, replay_stream, AutoscaleConfig, ReplayConfig, ReplayResult};

const SEED: u64 = 61;
/// Paper cluster baseline: master + two standard + two SGX workers.
const BASELINE_WORKERS: usize = 4;

struct BenchParams {
    mean_concurrency: f64,
    horizon: SimDuration,
    max_nodes: usize,
    max_step: usize,
    min_peak_nodes: usize,
    min_pod_events: usize,
}

impl BenchParams {
    fn full() -> Self {
        BenchParams {
            // Fig. 5's full 135 k concurrency: at ≈55 jobs per SGX
            // node this implies a cluster in the Borg cell's
            // 12,500-machine class.
            mean_concurrency: 135_000.0,
            horizon: SimDuration::from_mins(10),
            max_nodes: 12_500,
            max_step: 256,
            min_peak_nodes: 1_000,
            min_pod_events: 1_000_000,
        }
    }

    fn smoke() -> Self {
        BenchParams {
            mean_concurrency: 2_000.0,
            horizon: SimDuration::from_mins(2),
            max_nodes: 200,
            max_step: 32,
            min_peak_nodes: BASELINE_WORKERS + 1,
            min_pod_events: 1_000,
        }
    }
}

fn service_group() -> PodGroupSpec {
    PodGroupSpec {
        name: "frontend".to_string(),
        sgx: true,
        replica_request: ByteSize::from_mib(32),
        min_replicas: 2,
        max_replicas: 64,
        capacity_per_replica: 100.0,
        // Ramp with the trace, drain before the replay's natural end.
        profile: vec![(0, 200.0), (120, 2_000.0), (300, 2_000.0), (420, 200.0)],
    }
}

fn autoscale_config(params: &BenchParams) -> AutoscaleConfig {
    let policy = AutoscalerPolicy::paper_defaults()
        .with_scale_up_wait(SimDuration::from_secs(20))
        .with_scale_down_after(SimDuration::from_secs(60))
        .with_max_nodes(params.max_nodes)
        .with_max_step(params.max_step);
    AutoscaleConfig::every(SimDuration::from_secs(10), policy).with_pod_group(service_group())
}

fn run(params: &BenchParams) -> (ReplayResult, f64) {
    // The whole trace streams through `BorgSynthetic`: no workload is
    // materialised up front, so the timed region covers generation AND
    // replay while holding at most one job in memory.
    let config = GeneratorConfig::full_scale(SEED)
        .with_mean_concurrency(params.mean_concurrency)
        .with_horizon(params.horizon);
    let mut frontend = BorgSynthetic::new(config, WorkloadParams::paper(1.0, SEED));
    let replay_config = ReplayConfig::paper(SEED).with_autoscale(autoscale_config(params));
    let start = Instant::now();
    let result = replay_stream(&mut frontend, &replay_config);
    let wall = start.elapsed().as_secs_f64();
    (result, wall)
}

/// Jobs that came from the trace (the service group's replicas are
/// infrastructure pods with no trace job).
fn trace_jobs(result: &ReplayResult) -> usize {
    result.runs().iter().filter(|r| r.job.is_some()).count()
}

fn check(params: &BenchParams, result: &ReplayResult) {
    assert!(!result.timed_out(), "replay timed out");
    let terminal = result.completed_count() + result.denied_count() + result.unschedulable_count();
    // The service group's replicas are infrastructure, not workload jobs;
    // terminal counts cover both, so the trace jobs are a lower bound.
    assert!(
        terminal >= trace_jobs(result),
        "non-terminal pods remain: {terminal} < {}",
        trace_jobs(result)
    );
    // The stream's raison d'être: the replay never held more than one
    // not-yet-submitted job, regardless of the trace's size.
    assert!(
        result.peak_materialized_jobs() <= 1,
        "streaming replay materialised {} jobs ahead of the clock",
        result.peak_materialized_jobs()
    );
    let metrics = result.elasticity().expect("autoscaling is enabled");
    let peak = metrics.peak_nodes;
    assert!(
        peak > BASELINE_WORKERS && peak >= params.min_peak_nodes,
        "autoscaler did not grow the cluster: peak {peak}"
    );
    assert!(metrics.nodes_added as usize >= peak - BASELINE_WORKERS);
    assert!(
        metrics.mean_scale_up_latency_secs().is_some(),
        "no scale-up latency recorded"
    );
    assert!(
        pod_events(result) >= params.min_pod_events,
        "trace too small: {} pod events",
        pod_events(result)
    );
}

/// Pod events the discrete-event loop processed for the trace: one
/// submission plus one finish per job. A strict lower bound — requeues,
/// migrations and scheduler/probe/autoscale ticks come on top — and
/// unlike the orchestrator's bounded `events()` log it never saturates.
fn pod_events(result: &ReplayResult) -> usize {
    2 * trace_jobs(result)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let params = if smoke {
        BenchParams::smoke()
    } else {
        BenchParams::full()
    };

    let (result, wall) = run(&params);
    check(&params, &result);

    if smoke {
        // Determinism gate (full-scale replays are too big to run twice
        // in CI): a second replay must be bit-identical.
        let (again, _) = run(&params);
        assert_eq!(result.runs(), again.runs(), "replay is not deterministic");
        assert_eq!(result.events(), again.events());
        assert_eq!(result.elasticity(), again.elasticity());
        assert_eq!(result.group_peak_replicas(), again.group_peak_replicas());
        eprintln!(
            "bench_autoscale --smoke ok: {} jobs streamed (lookahead {}), {} pod events, peak {} nodes, deterministic",
            trace_jobs(&result),
            result.peak_materialized_jobs(),
            pod_events(&result),
            result.elasticity().map_or(0, |m| m.peak_nodes),
        );
        return;
    }

    let metrics = result.elasticity().expect("autoscaling is enabled");
    let sim_end = result
        .end_time()
        .saturating_since(SimTime::ZERO)
        .as_secs_f64();
    let groups: Vec<String> = result
        .group_peak_replicas()
        .iter()
        .map(|(name, peak)| format!("{{\"group\": \"{name}\", \"peak_replicas\": {peak}}}"))
        .collect();
    println!("{{");
    println!("  \"benchmark\": \"autoscaled_full_trace_replay\",");
    println!("  \"seed\": {SEED},");
    println!("  \"trace\": {{");
    println!("    \"frontend\": \"borg-synthetic\",");
    println!(
        "    \"mean_concurrency\": {},",
        params.mean_concurrency as u64
    );
    println!("    \"horizon_secs\": {},", params.horizon.as_secs_f64());
    println!("    \"jobs\": {},", trace_jobs(&result));
    println!("    \"pod_events\": {}", pod_events(&result));
    println!("  }},");
    println!("  \"autoscaler\": {{");
    println!("    \"period_secs\": 10,");
    println!("    \"scale_up_wait_secs\": 20,");
    println!("    \"scale_down_after_secs\": 60,");
    println!("    \"max_nodes\": {},", params.max_nodes);
    println!("    \"max_step\": {}", params.max_step);
    println!("  }},");
    println!("  \"replay\": {{");
    println!("    \"wall_secs\": {wall:.1},");
    println!("    \"sim_end_secs\": {sim_end:.0},");
    println!(
        "    \"events_per_wall_sec\": {:.0},",
        pod_events(&result) as f64 / wall
    );
    println!(
        "    \"peak_materialized_jobs\": {},",
        result.peak_materialized_jobs()
    );
    println!("    \"completed\": {},", result.completed_count());
    println!("    \"denied\": {},", result.denied_count());
    println!("    \"unschedulable\": {}", result.unschedulable_count());
    println!("  }},");
    println!("  \"elasticity\": {{");
    println!("    \"scale_up_events\": {},", metrics.scale_up_events);
    println!("    \"scale_down_events\": {},", metrics.scale_down_events);
    println!("    \"nodes_added\": {},", metrics.nodes_added);
    println!("    \"nodes_removed\": {},", metrics.nodes_removed);
    println!("    \"requeued_pods\": {},", metrics.requeued_pods);
    println!("    \"peak_nodes\": {},", metrics.peak_nodes);
    println!(
        "    \"mean_scale_up_latency_secs\": {:.2},",
        analysis::mean_scale_up_latency_secs(&result).unwrap_or(0.0)
    );
    println!(
        "    \"max_scale_up_latency_secs\": {:.2},",
        analysis::max_scale_up_latency_secs(&result).unwrap_or(0.0)
    );
    println!(
        "    \"wasted_capacity_node_secs\": {:.0}",
        analysis::wasted_capacity_node_secs(&result)
    );
    println!("  }},");
    println!("  \"pod_groups\": [{}]", groups.join(", "));
    println!("}}");
}

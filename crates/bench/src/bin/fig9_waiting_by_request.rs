//! Fig. 9 — average waiting time vs requested memory, for SGX and
//! standard jobs under the spread (top) and binpack (bottom) strategies.
//!
//! Paper observations (one run, 50 % SGX split, 95 % CIs): spread is
//! consistently worse than binpack; binpack handles bigger requests
//! better; SGX and standard jobs wait similarly.

use bench::{run_experiments, section, table};
use borg_trace::JobKind;
use orchestrator::{SGX_BINPACK, SGX_SPREAD};
use sgx_orchestrator::Experiment;
use sgx_sim::units::ByteSize;
use simulation::analysis::{mean_waiting_secs, waiting_by_request};

fn main() {
    let seed = 42;
    let schedulers = [SGX_SPREAD, SGX_BINPACK];
    let experiments: Vec<Experiment> = schedulers
        .iter()
        .map(|&scheduler| {
            Experiment::paper_replay(seed)
                .sgx_ratio(0.5)
                .scheduler(scheduler)
        })
        .collect();
    let results = run_experiments(&experiments);

    for (&scheduler, result) in schedulers.iter().zip(&results) {
        section(&format!(
            "Fig. 9 ({scheduler}): average waiting time by memory request"
        ));

        // SGX jobs: requests up to ~23 MiB (x-axis 0–25 MiB in the paper).
        let rows: Vec<Vec<String>> =
            waiting_by_request(result, JobKind::Sgx, ByteSize::from_mib(5))
                .into_iter()
                .map(|b| {
                    vec![
                        format!(
                            "{:.0}–{:.0}",
                            b.bucket_start.as_mib_f64(),
                            b.bucket_end.as_mib_f64()
                        ),
                        b.jobs.to_string(),
                        format!("{:.0} ± {:.0}", b.mean_waiting_secs, b.ci95_secs),
                    ]
                })
                .collect();
        table(
            &["SGX request [MiB]", "jobs", "avg wait [s] (95% CI)"],
            &rows,
        );

        // Standard jobs: requests up to 8 GiB (0–7500 MB in the paper).
        let rows: Vec<Vec<String>> =
            waiting_by_request(result, JobKind::Standard, ByteSize::from_mib(1536))
                .into_iter()
                .map(|b| {
                    vec![
                        format!(
                            "{:.0}–{:.0}",
                            b.bucket_start.as_mib_f64(),
                            b.bucket_end.as_mib_f64()
                        ),
                        b.jobs.to_string(),
                        format!("{:.0} ± {:.0}", b.mean_waiting_secs, b.ci95_secs),
                    ]
                })
                .collect();
        table(
            &["std request [MiB]", "jobs", "avg wait [s] (95% CI)"],
            &rows,
        );

        println!();
        println!(
            "  overall mean wait: SGX {:.0} s, standard {:.0} s",
            mean_waiting_secs(result, Some(JobKind::Sgx)),
            mean_waiting_secs(result, Some(JobKind::Standard)),
        );
    }
    println!();
    println!("  paper: spread consistently worse than binpack; SGX ≈ standard waits");
}

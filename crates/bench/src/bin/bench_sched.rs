//! Scheduler-pass throughput sweep: pods bound/sec and snapshot
//! captures/sec across cluster sizes (5 → 12,500 nodes).
//!
//! Two axes are measured per size:
//!
//! * `capture` — snapshot captures/sec with ~8 nodes receiving probe
//!   frames between captures, full rebuild
//!   (`incremental_snapshots = false`) vs incrementally maintained
//!   (`true`). The incremental path refreshes only the dirty/in-window
//!   nodes and structurally shares the rest, so it should scale with
//!   the number of *active* nodes, not the cluster size.
//! * `bind` — pods bound/sec for one scheduler pass over 64 small SGX
//!   pods, under three configurations: full capture + 100% of nodes
//!   scored (the seed behaviour), incremental + 100%, and incremental +
//!   adaptive sampling (the kube `max(5, 50 - nodes/125)` percentage).
//!
//! Prints a JSON document (see `BENCH_sched.json` at the repo root for
//! a recorded run) to stdout:
//!
//! ```sh
//! cargo run --release -p bench --bin bench_sched > BENCH_sched.json
//! ```
//!
//! `--smoke` runs a reduced sweep (5/100 nodes, 1 rep) and asserts the
//! invariants CI cares about: the incremental snapshot equals the full
//! rebuild bit for bit, the 100%-sampling bind outcomes are identical
//! with and without incremental snapshots, and every bind rate is
//! positive.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::time::Instant;

use cluster::api::PodSpec;
use cluster::machine::MachineSpec;
use cluster::node::NodeRole;
use cluster::probe::MEASUREMENT_EPC;
use cluster::topology::ClusterSpec;
use des::{SimDuration, SimTime};
use orchestrator::{Orchestrator, OrchestratorConfig, SGX_BINPACK};
use sgx_sim::units::ByteSize;
use tsdb::PointBatch;

const SIZES: &[usize] = &[5, 100, 1_000, 5_000, 12_500];
const SMOKE_SIZES: &[usize] = &[5, 100];
/// Pods scheduled in the timed pass of the bind benchmark.
const PODS_PER_PASS: usize = 64;
/// Nodes that receive probe frames between captures — the "active" set
/// whose size, not the cluster's, should bound incremental refresh cost.
const ACTIVE_NODES: usize = 8;
const PODS_PER_FRAME: usize = 8;
const CAPTURE_PASSES: usize = 50;
const SMOKE_CAPTURE_PASSES: usize = 5;
const REPS: usize = 3;

fn node_name(i: usize) -> String {
    format!("node-{i:05}")
}

fn build_orchestrator(nodes: usize, config: OrchestratorConfig) -> Orchestrator {
    let mut spec = ClusterSpec::new();
    for i in 0..nodes {
        spec = spec.with_node(node_name(i), MachineSpec::sgx_node(), NodeRole::Worker);
    }
    Orchestrator::new(spec, config)
}

fn config(incremental: bool, adaptive: bool) -> OrchestratorConfig {
    OrchestratorConfig::paper()
        .with_default_scheduler(SGX_BINPACK)
        .with_incremental_snapshots(incremental)
        .with_adaptive_percentage_of_nodes_to_score(adaptive)
}

/// The frame node `node` emits at capture pass `pass`.
fn frame_for(node: usize, pass: usize, now: SimTime) -> PointBatch {
    let mut batch = PointBatch::new(MEASUREMENT_EPC, "pod_name", now)
        .with_shared_tag("nodename", node_name(node));
    for pod in 0..PODS_PER_FRAME {
        batch.push(
            format!("pod-{pod}"),
            (node * 1000 + pod * 10 + pass % 7 + 1) as f64,
        );
    }
    batch
}

/// Best-of-`reps` throughput in items/sec; `run` returns items moved.
fn measure(reps: usize, mut run: impl FnMut() -> usize) -> f64 {
    let mut best = f64::MIN;
    for _ in 0..reps {
        let start = Instant::now();
        let items = run();
        let rate = items as f64 / start.elapsed().as_secs_f64();
        best = best.max(rate);
    }
    best
}

/// Captures/sec with `ACTIVE_NODES` nodes ingesting one frame between
/// consecutive captures. Cluster construction, cache priming, and the
/// (variant-independent) ingest work stay outside the clock: only the
/// `capture_snapshot` calls themselves are timed.
fn run_captures(nodes: usize, incremental: bool, passes: usize, reps: usize) -> f64 {
    let mut best = f64::MIN;
    for _ in 0..reps {
        let mut orch = build_orchestrator(nodes, config(incremental, false));
        // Prime the cache so the timed captures measure steady-state
        // refreshes, not the first (necessarily full) build.
        let _ = orch.capture_snapshot(SimTime::from_secs(1));
        let active = ACTIVE_NODES.min(nodes);
        let mut timed = std::time::Duration::ZERO;
        for pass in 0..passes {
            let now = SimTime::from_secs(10 * (pass as u64 + 1));
            for node in 0..active {
                let name = cluster::api::NodeName::new(node_name(node));
                orch.ingest_frame(&name, &frame_for(node, pass, now), now);
            }
            let start = Instant::now();
            let snapshot = orch.capture_snapshot(now);
            timed += start.elapsed();
            assert_eq!(snapshot.nodes().len(), nodes);
        }
        best = best.max(passes as f64 / timed.as_secs_f64());
    }
    best
}

/// Pods bound/sec for one scheduler pass over `PODS_PER_PASS` pods.
/// Returns (rate, digest-of-outcomes) so smoke mode can compare the
/// full and incremental variants decision for decision.
fn run_bind(nodes: usize, incremental: bool, adaptive: bool, reps: usize) -> (f64, u64) {
    let mut digest = 0u64;
    let rate = measure(reps, || {
        let mut orch = build_orchestrator(nodes, config(incremental, adaptive));
        let _ = orch.capture_snapshot(SimTime::from_secs(1));
        for i in 0..PODS_PER_PASS {
            orch.submit(
                PodSpec::builder(format!("pod-{i:03}"))
                    .sgx_resources(ByteSize::from_mib(1))
                    .duration(SimDuration::from_secs(3_600))
                    .build(),
                SimTime::from_secs(2),
            );
        }
        let start = SimTime::from_secs(5);
        let outcomes = orch.scheduler_pass(start);
        assert_eq!(outcomes.len(), PODS_PER_PASS);
        let bound = outcomes.iter().filter(|o| o.report.started()).count();
        assert_eq!(bound, PODS_PER_PASS, "every 1 MiB pod should bind");
        let mut hasher = DefaultHasher::new();
        for outcome in &outcomes {
            format!("{:?}", outcome.report).hash(&mut hasher);
        }
        digest = hasher.finish();
        bound
    });
    (rate, digest)
}

/// Smoke-only: the incremental snapshot must equal a full rebuild after
/// frames, binds, and a pod completion.
fn assert_snapshot_equivalence(nodes: usize) {
    let mut incr = build_orchestrator(nodes, config(true, false));
    let mut full = build_orchestrator(nodes, config(false, false));
    for orch in [&mut incr, &mut full] {
        let _ = orch.capture_snapshot(SimTime::from_secs(1));
        let uid = orch.submit(
            PodSpec::builder("smoke-pod")
                .sgx_resources(ByteSize::from_mib(4))
                .duration(SimDuration::from_secs(3_600))
                .build(),
            SimTime::from_secs(2),
        );
        let outcomes = orch.scheduler_pass(SimTime::from_secs(5));
        assert!(outcomes[0].report.started());
        let now = SimTime::from_secs(20);
        for node in 0..ACTIVE_NODES.min(nodes) {
            let name = cluster::api::NodeName::new(node_name(node));
            orch.ingest_frame(&name, &frame_for(node, 0, now), now);
        }
        orch.complete_pod(uid, SimTime::from_secs(30))
            .expect("pod completes");
    }
    let now = SimTime::from_secs(35);
    assert_eq!(
        incr.capture_snapshot(now),
        full.capture_snapshot(now),
        "incremental snapshot must equal a full rebuild at {nodes} nodes"
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (sizes, passes, reps) = if smoke {
        (SMOKE_SIZES, SMOKE_CAPTURE_PASSES, 1)
    } else {
        (SIZES, CAPTURE_PASSES, REPS)
    };
    let mut rows = Vec::new();
    for &nodes in sizes {
        let full_captures = run_captures(nodes, false, passes, reps);
        let incr_captures = run_captures(nodes, true, passes, reps);
        let (bind_full, digest_full) = run_bind(nodes, false, false, reps);
        let (bind_incr, digest_incr) = run_bind(nodes, true, false, reps);
        let (bind_adaptive, _) = run_bind(nodes, true, true, reps);
        if smoke {
            assert_snapshot_equivalence(nodes);
            assert_eq!(
                digest_full, digest_incr,
                "100%-sampling bind outcomes must not depend on the snapshot strategy"
            );
            assert!(bind_full > 0.0 && bind_incr > 0.0 && bind_adaptive > 0.0);
            eprintln!("smoke nodes={nodes}: snapshot + outcome equivalence OK");
        }
        eprintln!(
            "nodes={nodes}: captures full {full_captures:.0}/s, incr {incr_captures:.0}/s \
             ({:.2}x); bind full/100 {bind_full:.0} pods/s, incr/100 {bind_incr:.0} pods/s, \
             incr/adaptive {bind_adaptive:.0} pods/s ({:.2}x)",
            incr_captures / full_captures,
            bind_adaptive / bind_full
        );
        rows.push(format!(
            concat!(
                "    {{\"nodes\": {}, ",
                "\"full_captures_per_sec\": {:.1}, ",
                "\"incremental_captures_per_sec\": {:.1}, ",
                "\"capture_speedup\": {:.2}, ",
                "\"bind_full_100_pods_per_sec\": {:.0}, ",
                "\"bind_incremental_100_pods_per_sec\": {:.0}, ",
                "\"bind_incremental_adaptive_pods_per_sec\": {:.0}, ",
                "\"adaptive_speedup\": {:.2}}}"
            ),
            nodes,
            full_captures,
            incr_captures,
            incr_captures / full_captures,
            bind_full,
            bind_incr,
            bind_adaptive,
            bind_adaptive / bind_full
        ));
    }
    println!("{{");
    println!("  \"benchmark\": \"scheduler_pass_throughput\",");
    println!("  \"pods_per_pass\": {PODS_PER_PASS},");
    println!("  \"active_nodes_between_captures\": {ACTIVE_NODES},");
    println!("  \"capture_passes\": {passes},");
    println!("  \"reps\": {reps},");
    println!("  \"smoke\": {smoke},");
    println!("  \"results\": [");
    println!("{}", rows.join(",\n"));
    println!("  ]");
    println!("}}");
}

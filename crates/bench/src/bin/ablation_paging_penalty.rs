//! Ablation — the EPC paging penalty, and why the orchestrator must
//! prevent over-commitment (§V-A: "doing so leads to severe performance
//! drops up to 1000×").
//!
//! Runs the Fig. 11 attack (limits off, squatters stealing 50 % of each
//! node's EPC) at paper scale under different paging-slowdown curves: no
//! penalty at all, the calibrated default, and a harsher curve. Honest
//! jobs' runtimes inflate with the slowdown their node suffers at start.
//!
//! The run uses the *requests-only* stock scheduler: the SGX-aware
//! scheduler sees the squatters' measured usage and never over-commits a
//! node, so the paging curve never engages under it — which is itself the
//! paper's argument for measured-usage scheduling.

use bench::{fmt_hm, run_jobs, section, table};
use borg_trace::JobKind;
use des::SimTime;
use sgx_orchestrator::Experiment;
use sgx_sim::cost::CostModel;
use simulation::analysis::total_turnaround;

fn main() {
    let seed = 42;
    let exp = Experiment::paper_replay(seed)
        .sgx_ratio(1.0)
        .scheduler(orchestrator::DEFAULT_SCHEDULER)
        .limits(false)
        .malicious(0.5);
    let workload = exp.workload();

    section("Ablation: paging-slowdown curve under the Fig. 11 attack (paper scale)");
    let curves = [
        ("no penalty", 0.0),
        ("paper-calibrated", 9.0),
        ("harsh", 100.0),
    ];
    let jobs: Vec<simulation::SweepJob> = curves
        .iter()
        .map(|&(_, slope)| {
            let mut model = CostModel::paper_defaults();
            model.paging_slowdown_slope = slope;
            (workload.clone(), exp.replay_config().with_cost_model(model))
        })
        .collect();
    let results = run_jobs(&jobs);

    let mut rows = Vec::new();
    for (&(label, slope), result) in curves.iter().zip(&results) {
        let honest_makespan = result
            .honest_runs()
            .filter_map(|run| run.record.finished_at)
            .max()
            .unwrap_or(SimTime::ZERO)
            .saturating_since(SimTime::ZERO);
        rows.push(vec![
            label.to_string(),
            format!("{slope}"),
            format!(
                "{:.0}",
                total_turnaround(result, Some(JobKind::Sgx)).as_hours_f64()
            ),
            result.completed_count().to_string(),
            fmt_hm(honest_makespan),
        ]);
    }
    table(
        &[
            "slowdown curve",
            "slope",
            "Σ SGX turnaround [h]",
            "completed",
            "honest makespan",
        ],
        &rows,
    );
    println!();
    println!(
        "  expected: turnaround and makespan grow with the paging penalty — the cost of \
         letting the EPC over-commit, which strict limits (Fig. 11) avoid entirely"
    );
}

//! Fig. 5 — Google Borg trace: concurrently running jobs during the
//! first 24 h (a 125k–145k band, dipping around the replayed slice).
//!
//! At trace scale (~10⁸ job records for 24 h) materialisation is
//! pointless; the expected concurrency curve is computed by convolving
//! the calibrated arrival-rate profile with the duration survival
//! function (plus Poisson-scale noise), exactly as recorded in DESIGN.md.
//! The curve is reported at the (roughly hourly) granularity the paper
//! plots at, which averages out the minutes-scale burst component.

use bench::{section, table};
use borg_trace::GeneratorConfig;
use des::SimDuration;

fn main() {
    let seed = 42;
    let config = GeneratorConfig::paper_scale(seed);
    let series = config.fluid_concurrency(SimDuration::from_mins(1));

    // Average over 60-min windows — an exact multiple of the 30-min burst
    // period, so the sub-visual bursts do not alias into the plot.
    let window = 60usize;
    let averaged: Vec<(u64, f64)> = series
        .chunks(window)
        .filter(|c| c.len() == window)
        .map(|c| {
            let mid = c[c.len() / 2].0.as_secs();
            let mean = c.iter().map(|&(_, v)| v).sum::<f64>() / c.len() as f64;
            (mid, mean)
        })
        .collect();

    section("Fig. 5: concurrent running jobs over the first 24 h (hourly means)");
    let rows: Vec<Vec<String>> = averaged
        .iter()
        .step_by(2)
        .map(|&(secs, c)| {
            let in_slice = (6480..10_080).contains(&secs);
            vec![
                format!("{:.1}", secs as f64 / 3600.0),
                format!("{:.0}", c / 1000.0),
                if in_slice {
                    "← replayed slice".into()
                } else {
                    String::new()
                },
            ]
        })
        .collect();
    table(&["hour", "running jobs [k]", ""], &rows);

    // Skip the initial ramp-up window when computing the band.
    let body = &averaged[1..];
    let min = body.iter().map(|&(_, c)| c).fold(f64::MAX, f64::min);
    let max = body.iter().map(|&(_, c)| c).fold(f64::MIN, f64::max);
    println!();
    println!(
        "  band: {:.0}k – {:.0}k (paper: 125k – 145k)",
        min / 1000.0,
        max / 1000.0
    );
    // Use the raw 1-min samples for the slice mean (finer than windows).
    let slice: Vec<f64> = series
        .iter()
        .filter(|&&(t, _)| (6480..10_080).contains(&t.as_secs()))
        .map(|&(_, c)| c)
        .collect();
    let slice_mean = slice.iter().sum::<f64>() / slice.len().max(1) as f64;
    println!(
        "  mean inside replayed slice [6480 s, 10080 s): {:.0}k (the least job-intensive hour)",
        slice_mean / 1000.0
    );
}

//! Ablation — measured-usage scheduling vs requests-only scheduling.
//!
//! The paper's core design choice is feeding the scheduler *measured* EPC
//! usage (Listing 1) instead of trusting declared requests alone. This
//! ablation runs the same workload under the SGX-aware binpack scheduler
//! and under the stock requests-only scheduler, in an honest cluster and
//! under the Fig. 11 attack (malicious squatters stealing 50 % of each
//! node's EPC, driver limits off).
//!
//! Expected: both behave similarly when everyone is honest; under attack
//! the requests-only scheduler keeps packing pods onto nodes whose EPC is
//! already stolen, thrashing them with paging, while the measured-usage
//! scheduler routes around the theft.

use bench::{fmt_hm, run_experiments, section, table};
use borg_trace::JobKind;
use des::{SimDuration, SimTime};
use orchestrator::{DEFAULT_SCHEDULER, SGX_BINPACK};
use sgx_orchestrator::Experiment;
use simulation::analysis::{mean_waiting_secs, total_turnaround};
use simulation::ReplayResult;

/// Last completion instant among honest (trace-derived) jobs, so the
/// 12-hour malicious squatters do not dominate the makespan column.
fn honest_makespan(result: &ReplayResult) -> SimDuration {
    result
        .honest_runs()
        .filter_map(|run| run.record.finished_at)
        .max()
        .unwrap_or(SimTime::ZERO)
        .saturating_since(SimTime::ZERO)
}

fn main() {
    let seed = 42;

    section("Ablation: measured-usage vs requests-only scheduling (paper-scale replay)");
    let mut variants = Vec::new();
    let mut experiments = Vec::new();
    for (scenario, attack) in [("honest", false), ("under attack (limits off)", true)] {
        for scheduler in [SGX_BINPACK, DEFAULT_SCHEDULER] {
            let mut exp = Experiment::paper_replay(seed)
                .sgx_ratio(1.0)
                .scheduler(scheduler);
            if attack {
                exp = exp.limits(false).malicious(0.5);
            }
            variants.push((scenario, scheduler));
            experiments.push(exp);
        }
    }
    let results = run_experiments(&experiments);

    let mut rows = Vec::new();
    for (&(scenario, scheduler), result) in variants.iter().zip(&results) {
        rows.push(vec![
            scenario.to_string(),
            scheduler.to_string(),
            format!("{:.0}", mean_waiting_secs(result, Some(JobKind::Sgx))),
            format!(
                "{:.0}",
                total_turnaround(result, Some(JobKind::Sgx)).as_hours_f64()
            ),
            result.completed_count().to_string(),
            fmt_hm(honest_makespan(result)),
        ]);
    }
    table(
        &[
            "scenario",
            "scheduler",
            "SGX mean wait [s]",
            "Σ turnaround [h]",
            "completed",
            "honest makespan",
        ],
        &rows,
    );
    println!();
    println!(
        "  expected: comparable when honest; under attack the requests-only scheduler \
         over-commits stolen nodes (paging slowdowns inflate turnaround), while the \
         measured-usage scheduler backs off"
    );
}

//! Ingestion throughput sweep: points/sec for the probe→database path,
//! across shard counts (1/4/8) and cluster sizes (1/5/20 nodes).
//!
//! Three transports are measured per cell:
//!
//! * `per_point` — the seed path: one [`Point`] per sample, measurement
//!   and both tag strings cloned for every insert, single writer behind
//!   one lock.
//! * `batched` — one [`PointBatch`] frame per node per scrape, shipped
//!   over bounded crossbeam channels from per-node producer threads to
//!   writer threads calling [`ShardedDatabase::insert_batch`].
//! * `coalesced` — the batched topology with writer-local frame buffers
//!   flushed through [`ShardedDatabase::insert_batches`], which groups
//!   rows by shard across frames; combined with the per-series append
//!   path, a warmed run takes zero whole-shard exclusive locks (the
//!   sweep asserts this via
//!   [`ShardedDatabase::append_write_lock_acquisitions`]).
//!
//! Prints a JSON document (see `BENCH_ingest.json` at the repo root for
//! a recorded run) to stdout:
//!
//! ```sh
//! cargo run --release -p bench --bin bench_ingest > BENCH_ingest.json
//! ```
//!
//! `--smoke` skips the timing sweep and runs the correctness gate only:
//! buffered concurrent ingest with racing readers, then asserts the
//! store is bit-identical to the sequential oracle and that the warmed
//! append path took no exclusive shard locks. CI runs this on every
//! push.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use des::{SimDuration, SimTime};
use tsdb::{Aggregate, Database, Point, PointBatch, Predicate, Select, ShardedDatabase, TimeBound};

const PODS_PER_NODE: usize = 8;
/// Target sample volume per measured cell; passes scale inversely with
/// cluster size so every cell moves roughly this many points.
const TARGET_POINTS: usize = 240_000;
const REPS: usize = 3;
/// Frames a writer buffers before flushing them through
/// `insert_batches` — the orchestrator's coalescing flush size.
const FLUSH_FRAMES: usize = 32;

fn passes_for(nodes: usize) -> usize {
    (TARGET_POINTS / (nodes * PODS_PER_NODE)).max(1)
}

fn node_name(node: usize) -> String {
    format!("node-{node:02}")
}

/// The frame node `node` emits at scrape pass `pass`.
fn frame_for(node: usize, pass: usize) -> PointBatch {
    let now = SimTime::from_secs(10 * (pass as u64 + 1));
    let mut batch =
        PointBatch::new("sgx/epc", "pod_name", now).with_shared_tag("nodename", node_name(node));
    for pod in 0..PODS_PER_NODE {
        batch.push(
            format!("pod-{pod}"),
            (node * 1000 + pod * 10 + pass % 7 + 1) as f64,
        );
    }
    batch
}

/// Seed transport: the same samples as standalone points, every tag
/// cloned per point, inserted one by one from a single thread.
fn run_per_point(db: &ShardedDatabase, nodes: usize, passes: usize) {
    for pass in 0..passes {
        let now = SimTime::from_secs(10 * (pass as u64 + 1));
        for node in 0..nodes {
            for pod in 0..PODS_PER_NODE {
                db.insert(
                    Point::new(
                        "sgx/epc",
                        now,
                        (node * 1000 + pod * 10 + pass % 7 + 1) as f64,
                    )
                    .with_tag("pod_name", format!("pod-{pod}"))
                    .with_tag("nodename", node_name(node)),
                );
            }
        }
    }
}

/// Batched transport, no threads: the same frames inserted from the
/// probe loop directly — isolates the wire-format/allocation win from
/// parallelism.
fn run_batched_direct(db: &ShardedDatabase, nodes: usize, passes: usize) {
    for pass in 0..passes {
        for node in 0..nodes {
            db.insert_batch(&frame_for(node, pass));
        }
    }
}

/// Batched transport: per-node producer threads ship one frame per node
/// per pass over bounded channels to writer threads; a node's frames
/// always land on the same writer, preserving per-series order.
fn run_batched(db: &ShardedDatabase, nodes: usize, passes: usize, writers: usize) {
    crossbeam::thread::scope(|scope| {
        let mut senders = Vec::with_capacity(writers);
        for _ in 0..writers {
            let (tx, rx) = crossbeam::channel::bounded::<PointBatch>(16);
            senders.push(tx);
            scope.spawn(move || {
                while let Ok(batch) = rx.recv() {
                    db.insert_batch(&batch);
                }
            });
        }
        let producers = writers.min(nodes);
        for offset in 0..producers {
            let senders = senders.clone();
            scope.spawn(move || {
                for pass in 0..passes {
                    for node in (offset..nodes).step_by(producers) {
                        let mut hasher = DefaultHasher::new();
                        node_name(node).hash(&mut hasher);
                        let writer = hasher.finish() as usize % senders.len();
                        senders[writer]
                            .send(frame_for(node, pass))
                            .expect("writer alive");
                    }
                }
            });
        }
        drop(senders);
    });
}

/// Coalesced transport — the orchestrator's `probe_pass_concurrent`
/// shape: producers accumulate each writer's frames locally and ship
/// them in runs (the orchestrator sends one message per node), writers
/// coalesce arriving runs into a writer-local buffer flushed through
/// [`ShardedDatabase::insert_batches`]. Channel traffic drops by the run
/// length, and each shard's registry guard is taken once per flush
/// instead of once per frame. Frames cover scrape passes
/// `first_pass..first_pass + passes`, so a second wave over a warmed
/// store appends strictly newer samples (in time order, as real scrape
/// ticks would) instead of splicing into history.
fn run_coalesced(
    db: &ShardedDatabase,
    nodes: usize,
    first_pass: usize,
    passes: usize,
    writers: usize,
) {
    crossbeam::thread::scope(|scope| {
        let mut senders = Vec::with_capacity(writers);
        for _ in 0..writers {
            let (tx, rx) = crossbeam::channel::bounded::<Vec<PointBatch>>(16);
            senders.push(tx);
            scope.spawn(move || {
                let mut buffer: Vec<PointBatch> = Vec::with_capacity(FLUSH_FRAMES);
                while let Ok(frames) = rx.recv() {
                    buffer.extend(frames);
                    if buffer.len() >= FLUSH_FRAMES {
                        db.insert_batches(&buffer);
                        buffer.clear();
                    }
                }
                // Tick boundary: flush the remainder.
                db.insert_batches(&buffer);
            });
        }
        let producers = writers.min(nodes);
        for offset in 0..producers {
            let senders = senders.clone();
            scope.spawn(move || {
                let mut pending: Vec<Vec<PointBatch>> =
                    (0..senders.len()).map(|_| Vec::new()).collect();
                for pass in first_pass..first_pass + passes {
                    for node in (offset..nodes).step_by(producers) {
                        let mut hasher = DefaultHasher::new();
                        node_name(node).hash(&mut hasher);
                        let writer = hasher.finish() as usize % senders.len();
                        pending[writer].push(frame_for(node, pass));
                        if pending[writer].len() >= FLUSH_FRAMES {
                            senders[writer]
                                .send(std::mem::take(&mut pending[writer]))
                                .expect("writer alive");
                        }
                    }
                }
                for (writer, frames) in pending.into_iter().enumerate() {
                    if !frames.is_empty() {
                        senders[writer].send(frames).expect("writer alive");
                    }
                }
            });
        }
        drop(senders);
    });
}

/// The paper's Listing-1 query, as the racing smoke readers run it.
fn listing1() -> Select {
    let per_pod = Select::from_measurement("sgx/epc")
        .aggregate(Aggregate::Max)
        .filter(Predicate::ValueNe(0.0))
        .filter(Predicate::TimeAtLeast(TimeBound::SinceNowMinus(
            SimDuration::from_secs(25),
        )))
        .group_by(["pod_name", "nodename"]);
    Select::from_subquery(per_pod)
        .aggregate(Aggregate::Sum)
        .group_by(["nodename"])
}

/// Best-of-`REPS` throughput in points/sec.
fn measure(points: usize, mut run: impl FnMut()) -> f64 {
    let mut best = f64::MIN;
    for _ in 0..REPS {
        let start = Instant::now();
        run();
        let rate = points as f64 / start.elapsed().as_secs_f64();
        best = best.max(rate);
    }
    best
}

/// Correctness gate (`--smoke`): buffered concurrent ingest with racing
/// readers must land bit-identical to the sequential oracle, and the
/// warmed append path must take zero whole-shard exclusive locks.
fn smoke() {
    const NODES: usize = 20;
    const PASSES: usize = 50;
    const WRITERS: usize = 4;
    const SHARDS: usize = 4;

    let db = ShardedDatabase::new(SHARDS);
    let done = AtomicBool::new(false);
    crossbeam::thread::scope(|outer| {
        // Readers race the ingest: any intermediate answer is fine, but
        // the query must never panic or fabricate groups.
        for _ in 0..2 {
            let db = &db;
            let done = &done;
            outer.spawn(move || {
                let select = listing1();
                while !done.load(Ordering::Relaxed) {
                    let rows = db.query(&select, SimTime::from_secs(10 * PASSES as u64));
                    assert!(rows.len() <= NODES, "more groups than nodes");
                }
            });
        }
        run_coalesced(&db, NODES, 0, PASSES, WRITERS);
        done.store(true, Ordering::Relaxed);
    });

    let mut oracle = Database::new();
    for pass in 0..PASSES {
        for node in 0..NODES {
            oracle.insert_batch(&frame_for(node, pass));
        }
    }

    assert_eq!(db.points_inserted(), oracle.points_inserted());
    assert_eq!(db.out_of_order_inserts(), oracle.out_of_order_inserts());
    assert_eq!(db.snapshot(), oracle.snapshot(), "store diverged");
    let select = listing1();
    let now = SimTime::from_secs(10 * PASSES as u64);
    assert_eq!(db.query(&select, now), oracle.query(&select, now));

    // Warmed second wave (newer passes): every series exists, so the
    // whole run must not take a single whole-shard exclusive lock.
    let creations = db.append_write_lock_acquisitions();
    assert!(creations > 0, "first contact must grow the registry");
    run_coalesced(&db, NODES, PASSES, PASSES, WRITERS);
    assert_eq!(
        db.append_write_lock_acquisitions(),
        creations,
        "warmed append path took an exclusive shard lock"
    );
    eprintln!(
        "bench_ingest --smoke ok: {} points concurrent == oracle, \
         0 exclusive locks on warmed appends",
        db.points_inserted()
    );
}

/// The PR-2 run recorded on this repo's single-core container, before
/// the per-series append path existed — kept so regenerating the file
/// never loses the labeled baseline the new rows are compared against.
const SINGLE_CORE_BASELINE_PRE_PER_SERIES: &str = r#"    {"shards": 1, "nodes": 1, "writers": 1, "points": 240000, "per_point_pts_per_sec": 2812949, "batched_pts_per_sec": 4930423, "batched_threaded_pts_per_sec": 2823850, "batched_speedup": 1.75, "threaded_speedup": 1.00},
    {"shards": 1, "nodes": 5, "writers": 1, "points": 240000, "per_point_pts_per_sec": 2453922, "batched_pts_per_sec": 3933640, "batched_threaded_pts_per_sec": 2407305, "batched_speedup": 1.60, "threaded_speedup": 0.98},
    {"shards": 1, "nodes": 20, "writers": 1, "points": 240000, "per_point_pts_per_sec": 2071377, "batched_pts_per_sec": 3261623, "batched_threaded_pts_per_sec": 1900884, "batched_speedup": 1.57, "threaded_speedup": 0.92},
    {"shards": 4, "nodes": 1, "writers": 4, "points": 240000, "per_point_pts_per_sec": 3335005, "batched_pts_per_sec": 4143783, "batched_threaded_pts_per_sec": 2529846, "batched_speedup": 1.24, "threaded_speedup": 0.76},
    {"shards": 4, "nodes": 5, "writers": 4, "points": 240000, "per_point_pts_per_sec": 2703344, "batched_pts_per_sec": 3250207, "batched_threaded_pts_per_sec": 2036723, "batched_speedup": 1.20, "threaded_speedup": 0.75},
    {"shards": 4, "nodes": 20, "writers": 4, "points": 240000, "per_point_pts_per_sec": 1900270, "batched_pts_per_sec": 2779174, "batched_threaded_pts_per_sec": 2244476, "batched_speedup": 1.46, "threaded_speedup": 1.18},
    {"shards": 8, "nodes": 1, "writers": 4, "points": 240000, "per_point_pts_per_sec": 3230673, "batched_pts_per_sec": 4182771, "batched_threaded_pts_per_sec": 2582630, "batched_speedup": 1.29, "threaded_speedup": 0.80},
    {"shards": 8, "nodes": 5, "writers": 4, "points": 240000, "per_point_pts_per_sec": 2881959, "batched_pts_per_sec": 3849423, "batched_threaded_pts_per_sec": 2657132, "batched_speedup": 1.34, "threaded_speedup": 0.92},
    {"shards": 8, "nodes": 20, "writers": 4, "points": 240000, "per_point_pts_per_sec": 2659726, "batched_pts_per_sec": 3395070, "batched_threaded_pts_per_sec": 2433782, "batched_speedup": 1.28, "threaded_speedup": 0.92}"#;

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores == 1 {
        eprintln!(
            "warning: only 1 core detected — the threaded rows below measure a \
             degenerate configuration (writers time-slice one core and cannot \
             beat 1x); rerun on a multi-core host for meaningful speedups. \
             The lock-free hot path is still verified: the sweep asserts zero \
             whole-shard exclusive locks on warmed appends."
        );
    }
    let mut rows = Vec::new();
    for &shards in &[1usize, 4, 8] {
        for &nodes in &[1usize, 5, 20] {
            let passes = passes_for(nodes);
            let points = nodes * PODS_PER_NODE * passes;
            let per_point = measure(points, || {
                let db = ShardedDatabase::new(shards);
                run_per_point(&db, nodes, passes);
                assert_eq!(db.points_inserted() as usize, points);
            });
            let batched_direct = measure(points, || {
                let db = ShardedDatabase::new(shards);
                run_batched_direct(&db, nodes, passes);
                assert_eq!(db.points_inserted() as usize, points);
            });
            let writers = shards.min(4);
            let batched_threaded = measure(points, || {
                let db = ShardedDatabase::new(shards);
                run_batched(&db, nodes, passes, writers);
                assert_eq!(db.points_inserted() as usize, points);
            });
            let coalesced = measure(points, || {
                let db = ShardedDatabase::new(shards);
                run_coalesced(&db, nodes, 0, passes, writers);
                assert_eq!(db.points_inserted() as usize, points);
            });
            // Lock-free gate, untimed: warm a store, then ship a second
            // wave of newer passes — with every series registered it
            // must take zero whole-shard exclusive locks.
            let db = ShardedDatabase::new(shards);
            run_coalesced(&db, nodes, 0, passes, writers);
            let creations = db.append_write_lock_acquisitions();
            run_coalesced(&db, nodes, passes, passes, writers);
            assert_eq!(
                db.append_write_lock_acquisitions(),
                creations,
                "warmed append path took an exclusive shard lock"
            );
            eprintln!(
                "shards={shards} nodes={nodes}: per_point {per_point:.0} pts/s, \
                 batched {batched_direct:.0} pts/s ({:.2}x), \
                 threaded {batched_threaded:.0} pts/s ({:.2}x), \
                 coalesced {coalesced:.0} pts/s ({:.2}x)",
                batched_direct / per_point,
                batched_threaded / per_point,
                coalesced / per_point
            );
            rows.push(format!(
                concat!(
                    "    {{\"shards\": {}, \"nodes\": {}, \"writers\": {}, ",
                    "\"points\": {}, \"per_point_pts_per_sec\": {:.0}, ",
                    "\"batched_pts_per_sec\": {:.0}, ",
                    "\"batched_threaded_pts_per_sec\": {:.0}, ",
                    "\"coalesced_pts_per_sec\": {:.0}, ",
                    "\"batched_speedup\": {:.2}, \"threaded_speedup\": {:.2}, ",
                    "\"coalesced_speedup\": {:.2}}}"
                ),
                shards,
                nodes,
                writers,
                points,
                per_point,
                batched_direct,
                batched_threaded,
                coalesced,
                batched_direct / per_point,
                batched_threaded / per_point,
                coalesced / per_point
            ));
        }
    }
    println!("{{");
    println!("  \"benchmark\": \"probe_to_tsdb_ingestion\",");
    println!("  \"unit\": \"points_per_second\",");
    println!("  \"cores\": {cores},");
    if cores == 1 {
        println!(
            "  \"note\": \"single-core runner: the threaded pipeline cannot \
             exceed 1x; shard-parallel speedups need a multi-core host. The \
             per-series hot path is verified structurally instead: zero \
             whole-shard exclusive locks on warmed appends (asserted by the \
             coalesced cells, --smoke, and the sharded_props suite)\","
        );
    }
    println!("  \"pods_per_node\": {PODS_PER_NODE},");
    println!("  \"reps\": {REPS},");
    println!("  \"results\": [");
    println!("{}", rows.join(",\n"));
    println!("  ],");
    println!("  \"baseline_single_core_pre_per_series\": [");
    println!("{SINGLE_CORE_BASELINE_PRE_PER_SERIES}");
    println!("  ]");
    println!("}}");
}

//! Ingestion throughput sweep: points/sec for the probe→database path,
//! across shard counts (1/4/8) and cluster sizes (1/5/20 nodes).
//!
//! Two transports are measured per cell:
//!
//! * `per_point` — the seed path: one [`Point`] per sample, measurement
//!   and both tag strings cloned for every insert, single writer behind
//!   one lock.
//! * `batched` — one [`PointBatch`] frame per node per scrape, shipped
//!   over bounded crossbeam channels from per-node producer threads to
//!   per-shard writer threads calling
//!   [`ShardedDatabase::insert_batch`].
//!
//! Prints a JSON document (see `BENCH_ingest.json` at the repo root for
//! a recorded run) to stdout:
//!
//! ```sh
//! cargo run --release -p bench --bin bench_ingest > BENCH_ingest.json
//! ```

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::time::Instant;

use des::SimTime;
use tsdb::{Point, PointBatch, ShardedDatabase};

const PODS_PER_NODE: usize = 8;
/// Target sample volume per measured cell; passes scale inversely with
/// cluster size so every cell moves roughly this many points.
const TARGET_POINTS: usize = 240_000;
const REPS: usize = 3;

fn passes_for(nodes: usize) -> usize {
    (TARGET_POINTS / (nodes * PODS_PER_NODE)).max(1)
}

fn node_name(node: usize) -> String {
    format!("node-{node:02}")
}

/// The frame node `node` emits at scrape pass `pass`.
fn frame_for(node: usize, pass: usize) -> PointBatch {
    let now = SimTime::from_secs(10 * (pass as u64 + 1));
    let mut batch =
        PointBatch::new("sgx/epc", "pod_name", now).with_shared_tag("nodename", node_name(node));
    for pod in 0..PODS_PER_NODE {
        batch.push(
            format!("pod-{pod}"),
            (node * 1000 + pod * 10 + pass % 7 + 1) as f64,
        );
    }
    batch
}

/// Seed transport: the same samples as standalone points, every tag
/// cloned per point, inserted one by one from a single thread.
fn run_per_point(db: &ShardedDatabase, nodes: usize, passes: usize) {
    for pass in 0..passes {
        let now = SimTime::from_secs(10 * (pass as u64 + 1));
        for node in 0..nodes {
            for pod in 0..PODS_PER_NODE {
                db.insert(
                    Point::new(
                        "sgx/epc",
                        now,
                        (node * 1000 + pod * 10 + pass % 7 + 1) as f64,
                    )
                    .with_tag("pod_name", format!("pod-{pod}"))
                    .with_tag("nodename", node_name(node)),
                );
            }
        }
    }
}

/// Batched transport, no threads: the same frames inserted from the
/// probe loop directly — isolates the wire-format/allocation win from
/// parallelism.
fn run_batched_direct(db: &ShardedDatabase, nodes: usize, passes: usize) {
    for pass in 0..passes {
        for node in 0..nodes {
            db.insert_batch(&frame_for(node, pass));
        }
    }
}

/// Batched transport: per-node producer threads ship one frame per node
/// per pass over bounded channels to writer threads; a node's frames
/// always land on the same writer, preserving per-series order.
fn run_batched(db: &ShardedDatabase, nodes: usize, passes: usize, writers: usize) {
    crossbeam::thread::scope(|scope| {
        let mut senders = Vec::with_capacity(writers);
        for _ in 0..writers {
            let (tx, rx) = crossbeam::channel::bounded::<PointBatch>(16);
            senders.push(tx);
            scope.spawn(move || {
                while let Ok(batch) = rx.recv() {
                    db.insert_batch(&batch);
                }
            });
        }
        let producers = writers.min(nodes);
        for offset in 0..producers {
            let senders = senders.clone();
            scope.spawn(move || {
                for pass in 0..passes {
                    for node in (offset..nodes).step_by(producers) {
                        let mut hasher = DefaultHasher::new();
                        node_name(node).hash(&mut hasher);
                        let writer = hasher.finish() as usize % senders.len();
                        senders[writer]
                            .send(frame_for(node, pass))
                            .expect("writer alive");
                    }
                }
            });
        }
        drop(senders);
    });
}

/// Best-of-`REPS` throughput in points/sec.
fn measure(points: usize, mut run: impl FnMut()) -> f64 {
    let mut best = f64::MIN;
    for _ in 0..REPS {
        let start = Instant::now();
        run();
        let rate = points as f64 / start.elapsed().as_secs_f64();
        best = best.max(rate);
    }
    best
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut rows = Vec::new();
    for &shards in &[1usize, 4, 8] {
        for &nodes in &[1usize, 5, 20] {
            let passes = passes_for(nodes);
            let points = nodes * PODS_PER_NODE * passes;
            let per_point = measure(points, || {
                let db = ShardedDatabase::new(shards);
                run_per_point(&db, nodes, passes);
                assert_eq!(db.points_inserted() as usize, points);
            });
            let batched_direct = measure(points, || {
                let db = ShardedDatabase::new(shards);
                run_batched_direct(&db, nodes, passes);
                assert_eq!(db.points_inserted() as usize, points);
            });
            let writers = shards.min(4);
            let batched_threaded = measure(points, || {
                let db = ShardedDatabase::new(shards);
                run_batched(&db, nodes, passes, writers);
                assert_eq!(db.points_inserted() as usize, points);
            });
            eprintln!(
                "shards={shards} nodes={nodes}: per_point {per_point:.0} pts/s, \
                 batched {batched_direct:.0} pts/s ({:.2}x), \
                 threaded {batched_threaded:.0} pts/s ({:.2}x)",
                batched_direct / per_point,
                batched_threaded / per_point
            );
            rows.push(format!(
                concat!(
                    "    {{\"shards\": {}, \"nodes\": {}, \"writers\": {}, ",
                    "\"points\": {}, \"per_point_pts_per_sec\": {:.0}, ",
                    "\"batched_pts_per_sec\": {:.0}, ",
                    "\"batched_threaded_pts_per_sec\": {:.0}, ",
                    "\"batched_speedup\": {:.2}, \"threaded_speedup\": {:.2}}}"
                ),
                shards,
                nodes,
                writers,
                points,
                per_point,
                batched_direct,
                batched_threaded,
                batched_direct / per_point,
                batched_threaded / per_point
            ));
        }
    }
    println!("{{");
    println!("  \"benchmark\": \"probe_to_tsdb_ingestion\",");
    println!("  \"unit\": \"points_per_second\",");
    println!("  \"cores\": {cores},");
    if cores == 1 {
        println!(
            "  \"note\": \"single-core runner: the threaded pipeline cannot \
             exceed 1x; shard-parallel speedups need a multi-core host\","
        );
    }
    println!("  \"pods_per_node\": {PODS_PER_NODE},");
    println!("  \"reps\": {REPS},");
    println!("  \"results\": [");
    println!("{}", rows.join(",\n"));
    println!("  ]");
    println!("}}");
}

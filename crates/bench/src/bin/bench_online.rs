//! Online serving throughput: sustained pods-bound/sec through the
//! wall-clock serving loop.
//!
//! A producer thread pushes Borg-derived jobs through the in-process
//! submission API ([`simulation::online_channel`]) as fast as the
//! channel accepts them while [`simulation::OnlineServer`] stamps each
//! arrival with its wall-clock instant, runs the scheduler and probe
//! loops on their configured periods, and — once the stream closes —
//! drains the in-flight work at virtual speed. The headline metric is
//! the session's sustained scheduler throughput: pods bound per
//! wall-clock second over ingest plus drain.
//!
//! Prints a JSON document (see `BENCH_online.json` at the repo root
//! for a recorded run) to stdout:
//!
//! ```sh
//! cargo run --release -p bench --bin bench_online > BENCH_online.json
//! ```
//!
//! `--smoke` serves a reduced stream and asserts the invariants CI
//! cares about: every submission arrives, every pod reaches a terminal
//! state, everything not denied or unschedulable was bound, and the
//! reported rate is positive.

use borg_trace::{GeneratorConfig, Workload, WorkloadJob, WorkloadParams};
use cluster::machine::MachineSpec;
use cluster::node::NodeRole;
use cluster::topology::ClusterSpec;
use des::SimTime;
use simulation::{online_channel, OnlineReport, OnlineServer, ReplayConfig};

const SEED: u64 = 73;

struct BenchParams {
    /// SGX workers in the serving cluster.
    nodes: usize,
    /// Jobs pushed through the submission channel.
    jobs: usize,
}

impl BenchParams {
    fn full() -> Self {
        BenchParams {
            nodes: 1_000,
            jobs: 20_000,
        }
    }

    fn smoke() -> Self {
        BenchParams {
            nodes: 20,
            jobs: 200,
        }
    }
}

/// The submitted stream: the first `n` jobs of a Borg-derived workload,
/// all SGX so the homogeneous SGX cluster serves every one.
fn jobs(params: &BenchParams) -> Vec<WorkloadJob> {
    let config = if params.jobs > 1_000 {
        GeneratorConfig::full_scale(SEED).with_mean_concurrency(10_000.0)
    } else {
        GeneratorConfig::small(SEED).with_mean_concurrency(100.0)
    };
    let workload = Workload::materialize(&config.generate(), &WorkloadParams::paper(1.0, SEED));
    assert!(
        workload.len() >= params.jobs,
        "trace too small: {} jobs generated, {} needed",
        workload.len(),
        params.jobs
    );
    workload.jobs()[..params.jobs].to_vec()
}

fn serving_cluster(nodes: usize) -> ClusterSpec {
    let mut spec = ClusterSpec::new();
    for i in 0..nodes {
        spec = spec.with_node(
            format!("node-{i:05}"),
            MachineSpec::sgx_node(),
            NodeRole::Worker,
        );
    }
    spec
}

fn run(params: &BenchParams) -> OnlineReport {
    let jobs = jobs(params);
    let (handle, mut frontend) = online_channel();
    let submitter = std::thread::spawn(move || {
        for job in jobs {
            assert!(handle.submit(job), "server hung up mid-stream");
        }
    });
    let config = ReplayConfig::paper(SEED).with_cluster(serving_cluster(params.nodes));
    let report = OnlineServer::new(&config).serve(&mut frontend);
    submitter.join().expect("submitter thread panicked");
    report
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let params = if smoke {
        BenchParams::smoke()
    } else {
        BenchParams::full()
    };

    let report = run(&params);
    assert_eq!(report.submitted, params.jobs, "submissions were lost");
    assert_eq!(
        report.completed + report.denied + report.unschedulable,
        report.submitted,
        "non-terminal pods remain after the drain"
    );
    assert!(
        report.bound as usize >= report.submitted - report.denied - report.unschedulable,
        "pods completed without ever being bound"
    );
    assert!(report.bound_per_sec() > 0.0, "zero serving throughput");

    if smoke {
        eprintln!(
            "bench_online --smoke ok: {} submitted, {} bound in {:.2}s wall ({:.0} pods bound/sec)",
            report.submitted,
            report.bound,
            report.wall_secs,
            report.bound_per_sec(),
        );
        return;
    }

    let sim_end = report.sim_end.saturating_since(SimTime::ZERO).as_secs_f64();
    println!("{{");
    println!("  \"benchmark\": \"online_serving\",");
    println!("  \"seed\": {SEED},");
    println!("  \"cluster\": {{");
    println!("    \"sgx_nodes\": {}", params.nodes);
    println!("  }},");
    println!("  \"serving\": {{");
    println!("    \"submitted\": {},", report.submitted);
    println!("    \"bound\": {},", report.bound);
    println!("    \"completed\": {},", report.completed);
    println!("    \"denied\": {},", report.denied);
    println!("    \"unschedulable\": {},", report.unschedulable);
    println!("    \"wall_secs\": {:.2},", report.wall_secs);
    println!("    \"sim_end_secs\": {sim_end:.2},");
    println!("    \"bound_per_wall_sec\": {:.0}", report.bound_per_sec());
    println!("  }}");
    println!("}}");
}

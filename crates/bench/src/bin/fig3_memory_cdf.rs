//! Fig. 3 — Google Borg trace: distribution of maximal memory usage.
//!
//! The paper plots the CDF of each job's maximal memory usage as a
//! fraction of the largest machine's capacity; the mass sits far below
//! 0.1 with a thin tail reaching 0.5.

use bench::{section, table};
use borg_trace::{stats, GeneratorConfig};

fn main() {
    let seed = 42;
    // A large materialised sample of the calibrated generator: every 10th
    // job of the replay-scale process (≈220 k jobs) — the marginal is
    // scale-invariant, so this reproduces the full-trace distribution.
    let trace = GeneratorConfig::replay_scale(seed).generate_sampled(10);
    let cdf = stats::memory_usage_cdf(&trace);
    let assigned = stats::assigned_memory_cdf(&trace);

    section("Fig. 3: CDF of maximal memory usage [fraction of available memory]");
    println!("  jobs sampled: {}", trace.len());
    let rows: Vec<Vec<String>> = [0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5]
        .iter()
        .map(|&x| {
            vec![
                format!("{x:.2}"),
                format!("{:.1}", 100.0 * cdf.fraction_at_or_below(x)),
                format!("{:.1}", 100.0 * assigned.fraction_at_or_below(x)),
            ]
        })
        .collect();
    table(
        &["max mem usage ≤", "CDF [%] (used)", "CDF [%] (assigned)"],
        &rows,
    );

    println!();
    println!(
        "  max observed fraction: {:.3} (paper: tail ends at 0.5)",
        cdf.max().unwrap_or(0.0)
    );
    println!(
        "  jobs using more than advertised: {:.1} % (paper §VI-F: 44/663 ≈ 6.6 %)",
        100.0 * trace.over_user_count() as f64 / trace.len() as f64
    );
}

//! Fig. 10 — sum of turnaround times for all jobs, compared with the
//! useful duration recorded in the trace.
//!
//! Paper values (hours): Trace 94; binpack 111 (standard) / 210 (SGX);
//! spread 129 (standard) / 275 (SGX). Binpack wins; SGX jobs need a bit
//! less than twice the time of standard ones.

use bench::{run_experiments, section, table};
use orchestrator::{SGX_BINPACK, SGX_SPREAD};
use sgx_orchestrator::Experiment;
use simulation::analysis::total_turnaround;

fn main() {
    let seed = 42;

    // The Fig. 10 runs contain a single job type each (all standard or
    // all SGX).
    let trace_hours = Experiment::paper_replay(seed)
        .sgx_ratio(0.0)
        .workload()
        .total_duration()
        .as_hours_f64();

    section("Fig. 10: total turnaround time [h]");
    let variants = [
        (SGX_BINPACK, 0.0, "binpack / standard", "111"),
        (SGX_BINPACK, 1.0, "binpack / SGX", "210"),
        (SGX_SPREAD, 0.0, "spread / standard", "129"),
        (SGX_SPREAD, 1.0, "spread / SGX", "275"),
    ];
    let experiments: Vec<Experiment> = variants
        .iter()
        .map(|&(scheduler, ratio, _, _)| {
            Experiment::paper_replay(seed)
                .sgx_ratio(ratio)
                .scheduler(scheduler)
        })
        .collect();
    let results = run_experiments(&experiments);

    let mut rows = vec![vec![
        "trace (useful duration)".to_string(),
        format!("{trace_hours:.0}"),
        "94".to_string(),
    ]];
    for (&(_, _, label, paper), result) in variants.iter().zip(&results) {
        rows.push(vec![
            label.to_string(),
            format!("{:.0}", total_turnaround(result, None).as_hours_f64()),
            paper.to_string(),
        ]);
    }
    table(&["run", "measured [h]", "paper [h]"], &rows);

    println!();
    println!("  paper: binpack beats spread; SGX ≈ 2× standard under binpack");
}

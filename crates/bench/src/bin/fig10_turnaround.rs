//! Fig. 10 — sum of turnaround times for all jobs, compared with the
//! useful duration recorded in the trace.
//!
//! Paper values (hours): Trace 94; binpack 111 (standard) / 210 (SGX);
//! spread 129 (standard) / 275 (SGX). Binpack wins; SGX jobs need a bit
//! less than twice the time of standard ones.

use bench::{section, table};
use orchestrator::{SGX_BINPACK, SGX_SPREAD};
use sgx_orchestrator::Experiment;
use simulation::analysis::total_turnaround;

fn main() {
    let seed = 42;

    // The Fig. 10 runs contain a single job type each (all standard or
    // all SGX).
    let trace_hours = Experiment::paper_replay(seed)
        .sgx_ratio(0.0)
        .workload()
        .total_duration()
        .as_hours_f64();

    section("Fig. 10: total turnaround time [h]");
    let mut rows = vec![vec![
        "trace (useful duration)".to_string(),
        format!("{trace_hours:.0}"),
        "94".to_string(),
    ]];
    for (scheduler, label, paper_std, paper_sgx) in [
        (SGX_BINPACK, "binpack", "111", "210"),
        (SGX_SPREAD, "spread", "129", "275"),
    ] {
        let standard = Experiment::paper_replay(seed)
            .sgx_ratio(0.0)
            .scheduler(scheduler)
            .run();
        rows.push(vec![
            format!("{label} / standard"),
            format!("{:.0}", total_turnaround(&standard, None).as_hours_f64()),
            paper_std.to_string(),
        ]);
        let sgx = Experiment::paper_replay(seed)
            .sgx_ratio(1.0)
            .scheduler(scheduler)
            .run();
        rows.push(vec![
            format!("{label} / SGX"),
            format!("{:.0}", total_turnaround(&sgx, None).as_hours_f64()),
            paper_sgx.to_string(),
        ]);
    }
    table(&["run", "measured [h]", "paper [h]"], &rows);

    println!();
    println!("  paper: binpack beats spread; SGX ≈ 2× standard under binpack");
}

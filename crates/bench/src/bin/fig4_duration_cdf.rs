//! Fig. 4 — Google Borg trace: distribution of job duration.
//!
//! The paper's CDF shows every job lasting at most 300 s, which is what
//! justifies replaying a one-hour slice.

use bench::{section, table};
use borg_trace::{stats, GeneratorConfig};

fn main() {
    let seed = 42;
    let trace = GeneratorConfig::replay_scale(seed).generate_sampled(10);
    let cdf = stats::duration_cdf(&trace);

    section("Fig. 4: CDF of job duration [s]");
    println!("  jobs sampled: {}", trace.len());
    let rows: Vec<Vec<String>> = [15, 30, 60, 90, 120, 180, 240, 300]
        .iter()
        .map(|&x| {
            vec![
                format!("{x}"),
                format!("{:.1}", 100.0 * cdf.fraction_at_or_below(x as f64)),
            ]
        })
        .collect();
    table(&["duration ≤ [s]", "CDF [%]"], &rows);

    println!();
    println!(
        "  max duration: {:.0} s (paper: all jobs last at most 300 s)",
        cdf.max().unwrap_or(0.0)
    );
    println!(
        "  median duration: {:.0} s",
        cdf.quantile(0.5).unwrap_or(0.0)
    );
}

//! Fig. 8 — CDF of waiting times for varying shares of SGX-enabled jobs
//! (binpack strategy).
//!
//! Paper observations: the no-SGX run waits least; 25 % and 50 % SGX stay
//! very close to it; the pure-SGX run's tail "goes off the chart" with a
//! longest wait of 4696 s — more than any job's duration.

use bench::{quantile_headers, quantile_row, run_experiments, section, table};
use sgx_orchestrator::Experiment;
use simulation::analysis::waiting_cdf;

fn main() {
    let seed = 42;
    let ratios = [0.0, 0.25, 0.5, 0.75, 1.0];

    section("Fig. 8: CDF of waiting times by SGX-job share (binpack) [s]");
    let experiments: Vec<Experiment> = ratios
        .iter()
        .map(|&ratio| Experiment::paper_replay(seed).sgx_ratio(ratio))
        .collect();
    let results = run_experiments(&experiments);

    let mut rows = Vec::new();
    let mut max_wait_full_sgx = 0.0_f64;
    for (&ratio, result) in ratios.iter().zip(&results) {
        let cdf = waiting_cdf(result, None);
        if ratio == 1.0 {
            max_wait_full_sgx = cdf.max().unwrap_or(0.0);
        }
        rows.push(quantile_row(&format!("{:>3.0}% SGX", ratio * 100.0), &cdf));
    }
    table(&quantile_headers(), &rows);

    println!();
    println!(
        "  longest wait in the pure-SGX run: {max_wait_full_sgx:.0} s (paper: 4696 s, \
         exceeding any job duration)"
    );
    println!("  paper: 25–50 % SGX runs sit close to the no-SGX curve; 100 % has a heavy tail");
}

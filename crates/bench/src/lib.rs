//! Shared reporting helpers for the figure-regeneration binaries.
//!
//! Each `fig*` binary reproduces one figure of the paper's evaluation and
//! prints the same rows/series the paper plots, side by side with the
//! paper's reported values where the paper states them. Run them all with
//!
//! ```text
//! for f in fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11; do
//!     cargo run --release -p bench --bin ${f}_*;
//! done
//! ```

use des::stats::Cdf;
use des::SimDuration;
use sgx_orchestrator::Experiment;
use simulation::{sweep, ReplayResult, SweepProgress};

/// Runs a batch of experiments on the parallel sweep (one worker per
/// available core), printing a progress line to stderr as each replay
/// completes. Results come back in input order and are bit-identical to
/// running each experiment sequentially.
pub fn run_experiments(experiments: &[Experiment]) -> Vec<ReplayResult> {
    announce(experiments.len());
    Experiment::run_all_with_progress(experiments, progress_line)
}

/// [`run_experiments`] for pre-materialised `(workload, config)` pairs —
/// the ablations that mutate workloads or cost models directly.
pub fn run_jobs(jobs: &[sweep::SweepJob]) -> Vec<ReplayResult> {
    announce(jobs.len());
    sweep::run_all_with(jobs, sweep::default_threads(jobs.len()), progress_line)
}

fn announce(runs: usize) {
    eprintln!(
        "  running {runs} replay(s) on {} worker thread(s)...",
        sweep::default_threads(runs)
    );
}

fn progress_line(p: SweepProgress) {
    eprintln!("    [{}/{}] replay #{} done", p.completed, p.total, p.index);
}

/// Prints a section header.
pub fn section(title: &str) {
    println!();
    println!("== {title} ==");
}

/// Prints an aligned table: a header row plus data rows.
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
pub fn table(headers: &[&str], rows: &[Vec<String>]) {
    for row in rows {
        assert_eq!(
            row.len(),
            headers.len(),
            "table rows must match header arity"
        );
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let print_row = |cells: &[String]| {
        let line: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
            .collect();
        println!("  {}", line.join("  "));
    };
    print_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    println!(
        "  {}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for row in rows {
        print_row(row);
    }
}

/// Formats a duration as `4h47m` / `12m05s` / `42.0s`.
pub fn fmt_hm(d: SimDuration) -> String {
    let secs = d.as_secs();
    if secs >= 3600 {
        format!("{}h{:02}m", secs / 3600, (secs % 3600) / 60)
    } else if secs >= 60 {
        format!("{}m{:02}s", secs / 60, secs % 60)
    } else {
        format!("{:.1}s", d.as_secs_f64())
    }
}

/// The standard quantiles reported for waiting-time CDFs.
pub const CDF_QUANTILES: [f64; 6] = [0.50, 0.80, 0.90, 0.95, 0.99, 1.00];

/// One table row of waiting-time quantiles (seconds), prefixed by `label`.
pub fn quantile_row(label: &str, cdf: &Cdf) -> Vec<String> {
    let mut row = vec![label.to_string(), cdf.len().to_string()];
    for q in CDF_QUANTILES {
        row.push(match cdf.quantile(q) {
            Some(v) => format!("{v:.0}"),
            None => "-".to_string(),
        });
    }
    row
}

/// Headers matching [`quantile_row`].
pub fn quantile_headers() -> Vec<&'static str> {
    vec!["run", "jobs", "p50", "p80", "p90", "p95", "p99", "max"]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_hm_units() {
        assert_eq!(fmt_hm(SimDuration::from_secs(4 * 3600 + 47 * 60)), "4h47m");
        assert_eq!(fmt_hm(SimDuration::from_secs(125)), "2m05s");
        assert_eq!(fmt_hm(SimDuration::from_secs(42)), "42.0s");
    }

    #[test]
    fn quantile_row_shape() {
        let cdf = Cdf::from_samples((0..100).map(f64::from));
        let row = quantile_row("x", &cdf);
        assert_eq!(row.len(), quantile_headers().len());
        assert_eq!(row[0], "x");
        assert_eq!(row[1], "100");
        assert_eq!(row.last().unwrap(), "99");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_validates_arity() {
        table(&["a", "b"], &[vec!["1".into()]]);
    }
}

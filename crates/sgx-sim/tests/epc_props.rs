//! Property-based tests for the EPC allocator and driver invariants.

use proptest::prelude::*;

use sgx_sim::driver::SgxDriver;
use sgx_sim::epc::{Epc, EpcConfig};
use sgx_sim::units::{ByteSize, EpcPages};
use sgx_sim::{CgroupPath, Pid};

/// A randomly generated EPC operation.
#[derive(Debug, Clone)]
enum Op {
    Register,
    Commit { enclave: usize, pages: u64 },
    Release { enclave: usize, pages: u64 },
    Touch { enclave: usize, pages: u64 },
    Deregister { enclave: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Register),
        (0usize..8, 1u64..400).prop_map(|(enclave, pages)| Op::Commit { enclave, pages }),
        (0usize..8, 1u64..400).prop_map(|(enclave, pages)| Op::Release { enclave, pages }),
        (0usize..8, 1u64..400).prop_map(|(enclave, pages)| Op::Touch { enclave, pages }),
        (0usize..8).prop_map(|enclave| Op::Deregister { enclave }),
    ]
}

fn tiny_config(paging: bool) -> EpcConfig {
    EpcConfig {
        prm: ByteSize::from_bytes(1000 * 4096 * 2),
        usable: ByteSize::from_bytes(1000 * 4096),
        paging_enabled: paging,
    }
}

proptest! {
    /// After any sequence of operations, `free + Σ resident == total` and
    /// `resident + paged_out == committed` per enclave.
    #[test]
    fn epc_invariants_hold_under_arbitrary_ops(
        ops in prop::collection::vec(op_strategy(), 1..120),
        paging in any::<bool>(),
    ) {
        let mut epc = Epc::new(tiny_config(paging));
        let mut ids = Vec::new();
        for op in ops {
            match op {
                Op::Register => ids.push(epc.register_enclave()),
                Op::Commit { enclave, pages } => {
                    if let Some(&id) = ids.get(enclave) {
                        let _ = epc.commit(id, EpcPages::new(pages));
                    }
                }
                Op::Release { enclave, pages } => {
                    if let Some(&id) = ids.get(enclave) {
                        let _ = epc.release(id, EpcPages::new(pages));
                    }
                }
                Op::Touch { enclave, pages } => {
                    if let Some(&id) = ids.get(enclave) {
                        let _ = epc.touch(id, EpcPages::new(pages));
                    }
                }
                Op::Deregister { enclave } => {
                    if let Some(&id) = ids.get(enclave) {
                        let _ = epc.deregister_enclave(id);
                    }
                }
            }
            prop_assert!(epc.check_invariants());
        }
    }

    /// With paging disabled, committed pages can never exceed the usable
    /// EPC, no matter what sequence of commits is attempted.
    #[test]
    fn no_paging_means_no_overcommit(
        commits in prop::collection::vec((0usize..4, 1u64..600), 1..60),
    ) {
        let mut epc = Epc::new(tiny_config(false));
        let ids: Vec<_> = (0..4).map(|_| epc.register_enclave()).collect();
        for (slot, pages) in commits {
            let _ = epc.commit(ids[slot], EpcPages::new(pages));
            prop_assert!(epc.committed_pages() <= epc.total_pages());
            prop_assert!(epc.overcommit_ratio() <= 1.0 + f64::EPSILON);
        }
    }

    /// The driver's admission check is airtight: whatever a pod commits,
    /// initialisation only succeeds when the pod is within its limit.
    #[test]
    fn admission_check_is_sound(
        limit in 1u64..2000,
        sizes in prop::collection::vec(1u64..1500, 1..6),
    ) {
        let mut driver = SgxDriver::sgx1_default();
        let pod = CgroupPath::new("/kubepods/prop-pod");
        driver.set_pod_limit(&pod, EpcPages::new(limit)).unwrap();
        let mut owned = 0u64;
        for (i, pages) in sizes.iter().enumerate() {
            let enclave = driver.create_enclave(Pid::new(i as u32), pod.clone());
            driver.add_pages(enclave, EpcPages::new(*pages)).unwrap();
            let admitted = driver.init_enclave(enclave).is_ok();
            prop_assert_eq!(admitted, owned + pages <= limit);
            if admitted {
                owned += pages;
            } else {
                // A denied enclave is torn down by its owner.
                driver.destroy_enclave(enclave).unwrap();
            }
        }
        prop_assert!(driver.pages_for_pod(&pod) <= EpcPages::new(limit) || owned <= limit);
    }

    /// Free-page module parameter always mirrors EPC accounting.
    #[test]
    fn module_params_track_accounting(
        sizes in prop::collection::vec(1u64..500, 1..10),
    ) {
        let mut driver = SgxDriver::sgx1_default();
        driver.set_enforce_limits(false);
        let pod = CgroupPath::new("/kubepods/p");
        let mut enclaves = Vec::new();
        for (i, pages) in sizes.iter().enumerate() {
            let e = driver.create_enclave(Pid::new(i as u32), pod.clone());
            driver.add_pages(e, EpcPages::new(*pages)).unwrap();
            enclaves.push(e);
        }
        let committed: u64 = sizes.iter().sum();
        prop_assert_eq!(
            driver.read_module_param("sgx_nr_free_pages").unwrap(),
            23_936 - committed
        );
        for e in enclaves {
            driver.destroy_enclave(e).unwrap();
        }
        prop_assert_eq!(driver.read_module_param("sgx_nr_free_pages").unwrap(), 23_936);
    }
}

//! Simulated Intel SGX substrate.
//!
//! The paper's stack sits on real Skylake hardware and a patched Intel
//! `isgx` Linux kernel driver. This crate reproduces everything the
//! orchestration layers above can observe of that substrate:
//!
//! * [`units`] — EPC pages (4 KiB) and byte quantities, with the paper's
//!   constants: a 128 MiB Processor Reserved Memory of which 93.5 MiB
//!   (23 936 pages) are usable by applications.
//! * [`epc`] — the Enclave Page Cache: page accounting shared by all
//!   enclaves on a machine, including the paging (page-out to encrypted
//!   system memory) mechanism that makes over-commitment possible but
//!   catastrophically slow.
//! * [`enclave`] — the enclave lifecycle state machine, covering both SGX1
//!   (all memory committed before `EINIT`) and SGX2 (EDMM: dynamic
//!   allocation after initialisation, §VI-G of the paper).
//! * [`cost`] — the startup/latency model measured in Fig. 6: PSW/AESM
//!   service startup (~100 ms) plus enclave memory allocation at
//!   1.6 ms/MiB below the usable-EPC limit and 200 ms + 4.5 ms/MiB above
//!   it, and the paging slowdown (up to 1000×, per SCONE).
//! * [`driver`] — the paper's modified driver interface (§V-E): the
//!   `sgx_nr_total_epc_pages` / `sgx_nr_free_pages` module parameters, the
//!   per-process page-count ioctl, the set-once per-pod (cgroup-path) limit
//!   ioctl, and the admission check in `__sgx_encl_init` that denies
//!   enclaves exceeding their pod's advertised share.
//!
//! # Examples
//!
//! ```
//! use sgx_sim::driver::SgxDriver;
//! use sgx_sim::units::{ByteSize, EpcPages};
//! use sgx_sim::{CgroupPath, Pid, SgxVersion};
//!
//! let mut driver = SgxDriver::sgx1_default();
//! let pod = CgroupPath::new("/kubepods/pod-1234");
//! driver.set_pod_limit(&pod, EpcPages::from_mib_ceil(16))?;
//!
//! let enclave = driver.create_enclave(Pid::new(42), pod.clone());
//! driver.add_pages(enclave, ByteSize::from_mib(8).to_epc_pages_ceil())?;
//! driver.init_enclave(enclave)?; // within the pod limit: admitted
//!
//! assert_eq!(driver.pages_for_pod(&pod), ByteSize::from_mib(8).to_epc_pages_ceil());
//! assert_eq!(driver.version(), SgxVersion::Sgx1);
//! # Ok::<(), sgx_sim::SgxError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attestation;
pub mod cost;
pub mod driver;
pub mod enclave;
pub mod epc;
pub mod mee;
pub mod migration;
pub mod units;

mod error;
mod ids;

pub use error::SgxError;
pub use ids::{CgroupPath, EnclaveId, Pid};

use serde::{Deserialize, Serialize};

/// The SGX hardware generation being simulated.
///
/// The difference that matters to the orchestrator (§VI-G) is memory
/// semantics: SGX1 enclaves must commit every EPC page before
/// initialisation, while SGX2 supports EDMM — enclaves may request and
/// release pages while running.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SgxVersion {
    /// First-generation SGX: static EPC allocation at enclave build time.
    Sgx1,
    /// Second-generation SGX with dynamic memory management (EDMM).
    Sgx2,
}

impl SgxVersion {
    /// `true` when enclaves may grow or shrink after initialisation.
    pub fn supports_dynamic_memory(self) -> bool {
        matches!(self, SgxVersion::Sgx2)
    }
}

impl std::fmt::Display for SgxVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SgxVersion::Sgx1 => f.write_str("SGX1"),
            SgxVersion::Sgx2 => f.write_str("SGX2"),
        }
    }
}

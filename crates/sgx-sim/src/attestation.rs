//! Attestation and launch infrastructure (§II, Fig. 1).
//!
//! Real SGX ships *architectural enclaves* reachable through the
//! Application Enclave Service Manager (AESM):
//!
//! * the **Launch Enclave (LE)** issues launch tokens, without which
//!   `EINIT` fails;
//! * the **Quoting Enclave (QE)** converts a local report into a *quote*
//!   a remote party can verify came from a genuine SGX CPU running a
//!   specific enclave measurement;
//! * the **Provisioning Enclave (PE)** obtains the platform's attestation
//!   key from Intel.
//!
//! The paper relies on this machinery implicitly — every SGX container
//! bundles its own PSW/AESM (§V-F), which is where the ≈100 ms startup
//! cost of Fig. 6 comes from — and its trust model (§III) assumes remote
//! attestation lets customers verify their enclaves before provisioning
//! secrets. This module simulates the full flow so applications built on
//! the substrate exercise the same protocol steps:
//!
//! ```text
//! measure(pages) → MRENCLAVE
//!      AESM.launch_token(mrenclave, signer)  → LaunchToken   (LE)
//!      driver.init_enclave_with_token(...)   → EINIT checks the token
//!      AESM.quote(report)                    → Quote          (QE)
//!      verify_quote(quote, expected)         → remote party decides
//! ```
//!
//! Sealing is modelled too: data sealed to a measurement can only be
//! unsealed by an enclave with the same measurement on the same platform.

use serde::{Deserialize, Serialize};

use crate::error::SgxError;
use crate::units::EpcPages;

/// An enclave *measurement* (MRENCLAVE): a digest of the enclave's
/// initial contents and layout. Two enclaves built from the same pages
/// have the same measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Measurement(u64);

impl Measurement {
    /// Computes the measurement of an enclave from its committed size and
    /// code identity. Real SGX hashes every `EADD`ed page; the simulation
    /// digests the page count and a caller-supplied code identity, which
    /// preserves the property the protocols rely on: equal inputs ⇒ equal
    /// measurement, different inputs ⇒ (overwhelmingly) different.
    pub fn compute(code_identity: &str, size: EpcPages) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325_u64; // FNV-1a
        for &b in code_identity.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^= size.count();
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
        Measurement(h)
    }

    /// The raw digest value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

/// Identity of the enclave author (MRSIGNER): the key that signed the
/// shipped shared object.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Signer(String);

impl Signer {
    /// Creates a signer identity.
    ///
    /// # Panics
    ///
    /// Panics if `name` is empty.
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        assert!(!name.is_empty(), "signer identity must not be empty");
        Signer(name)
    }

    /// The signer's name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

/// A launch token issued by the Launch Enclave; `EINIT` requires one that
/// matches the enclave being initialised on the issuing platform.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaunchToken {
    measurement: Measurement,
    signer: Signer,
    platform: u64,
}

impl LaunchToken {
    /// The measurement the token was issued for.
    pub fn measurement(&self) -> Measurement {
        self.measurement
    }

    /// Whether this token authorises launching `(measurement, signer)` on
    /// platform `platform`.
    pub fn authorises(&self, measurement: Measurement, signer: &Signer, platform: u64) -> bool {
        self.measurement == measurement && &self.signer == signer && self.platform == platform
    }
}

/// A local attestation report: produced by the CPU (`EREPORT`), only
/// meaningful on the platform that produced it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Report {
    /// Measurement of the reporting enclave.
    pub measurement: Measurement,
    /// Its signer.
    pub signer: Signer,
    /// Free-form user data bound into the report (e.g. a key-exchange
    /// public key).
    pub report_data: u64,
    platform: u64,
}

/// A quote: a report signed by the platform's attestation key, verifiable
/// by a remote party.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Quote {
    report: Report,
    attestation_key: u64,
}

impl Quote {
    /// The quoted report.
    pub fn report(&self) -> &Report {
        &self.report
    }
}

/// Outcome of remote quote verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuoteVerdict {
    /// The quote is genuine and the measurement matches expectations.
    Trusted,
    /// Genuine platform, but an unexpected enclave measurement.
    WrongMeasurement,
    /// The attestation signature does not verify (forged or corrupted).
    InvalidSignature,
}

/// Data sealed to an enclave identity: only the same measurement on the
/// same platform can unseal it (MRENCLAVE policy).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SealedData {
    ciphertext: Vec<u8>,
    seal_key: u64,
}

/// The Application Enclave Service Manager for one platform: the gateway
/// to the LE/QE/PE architectural enclaves.
///
/// # Examples
///
/// ```
/// use sgx_sim::attestation::{Aesm, Measurement, QuoteVerdict, Signer};
/// use sgx_sim::units::EpcPages;
///
/// let aesm = Aesm::new(7);
/// let signer = Signer::new("acme-corp");
/// let mrenclave = Measurement::compute("kv-store-v1", EpcPages::new(1024));
///
/// let token = aesm.launch_token(mrenclave, &signer);
/// assert!(token.authorises(mrenclave, &signer, 7));
///
/// let report = aesm.report(mrenclave, &signer, 0xFEED);
/// let quote = aesm.quote(&report).expect("report from this platform");
/// assert_eq!(Aesm::verify_quote(&quote, mrenclave), QuoteVerdict::Trusted);
/// ```
#[derive(Debug, Clone)]
pub struct Aesm {
    platform: u64,
    attestation_key: u64,
}

impl Aesm {
    /// Brings up the AESM on a platform. The attestation key is derived
    /// the way the Provisioning Enclave would obtain it from Intel:
    /// deterministically per platform.
    pub fn new(platform: u64) -> Self {
        Aesm {
            platform,
            attestation_key: Self::provisioned_key(platform),
        }
    }

    /// The key the PE would provision for `platform` — also used by the
    /// verifier as its view of Intel's registry.
    fn provisioned_key(platform: u64) -> u64 {
        platform.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17) ^ 0xA0A0_5EA1_ED00_0000
    }

    /// This platform's identifier.
    pub fn platform(&self) -> u64 {
        self.platform
    }

    /// Launch Enclave: issues a launch token for `(measurement, signer)`
    /// on this platform.
    pub fn launch_token(&self, measurement: Measurement, signer: &Signer) -> LaunchToken {
        LaunchToken {
            measurement,
            signer: signer.clone(),
            platform: self.platform,
        }
    }

    /// `EREPORT`: produces a local report for an enclave of this platform.
    pub fn report(&self, measurement: Measurement, signer: &Signer, report_data: u64) -> Report {
        Report {
            measurement,
            signer: signer.clone(),
            report_data,
            platform: self.platform,
        }
    }

    /// Quoting Enclave: converts a local report into a remotely
    /// verifiable quote.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::InvalidState`]-free custom error? No —
    /// reports from another platform cannot be quoted; the QE refuses.
    pub fn quote(&self, report: &Report) -> Result<Quote, SgxError> {
        if report.platform != self.platform {
            return Err(SgxError::AttestationFailed {
                reason: "report was produced on a different platform",
            });
        }
        Ok(Quote {
            report: report.clone(),
            attestation_key: self.attestation_key,
        })
    }

    /// Remote verification: checks the quote's signature against Intel's
    /// registry and compares the measurement with what the verifier
    /// expects to be running.
    pub fn verify_quote(quote: &Quote, expected: Measurement) -> QuoteVerdict {
        if quote.attestation_key != Self::provisioned_key(quote.report.platform) {
            QuoteVerdict::InvalidSignature
        } else if quote.report.measurement != expected {
            QuoteVerdict::WrongMeasurement
        } else {
            QuoteVerdict::Trusted
        }
    }

    /// Seals `data` to an enclave measurement on this platform
    /// (MRENCLAVE policy): survives restarts, "waiving the need for a new
    /// remote attestation every time the SGX application restarts" (§II).
    pub fn seal(&self, measurement: Measurement, data: &[u8]) -> SealedData {
        let seal_key = self.seal_key(measurement);
        let ciphertext = data
            .iter()
            .enumerate()
            .map(|(i, &b)| b ^ (seal_key.rotate_left((i % 64) as u32) as u8))
            .collect();
        SealedData {
            ciphertext,
            seal_key,
        }
    }

    /// Unseals data previously sealed to `measurement` on this platform.
    ///
    /// # Errors
    ///
    /// Fails when the measurement or platform differ from the sealing
    /// enclave's.
    pub fn unseal(
        &self,
        measurement: Measurement,
        sealed: &SealedData,
    ) -> Result<Vec<u8>, SgxError> {
        let seal_key = self.seal_key(measurement);
        if seal_key != sealed.seal_key {
            return Err(SgxError::AttestationFailed {
                reason: "seal key mismatch: wrong enclave identity or platform",
            });
        }
        Ok(sealed
            .ciphertext
            .iter()
            .enumerate()
            .map(|(i, &b)| b ^ (seal_key.rotate_left((i % 64) as u32) as u8))
            .collect())
    }

    fn seal_key(&self, measurement: Measurement) -> u64 {
        self.attestation_key.wrapping_mul(0xBF58_476D_1CE4_E5B9) ^ measurement.as_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Aesm, Signer, Measurement) {
        (
            Aesm::new(1),
            Signer::new("unine"),
            Measurement::compute("stress-sgx", EpcPages::new(512)),
        )
    }

    #[test]
    fn measurements_are_deterministic_and_content_sensitive() {
        let a = Measurement::compute("app", EpcPages::new(100));
        let b = Measurement::compute("app", EpcPages::new(100));
        assert_eq!(a, b);
        assert_ne!(a, Measurement::compute("app", EpcPages::new(101)));
        assert_ne!(a, Measurement::compute("app2", EpcPages::new(100)));
    }

    #[test]
    fn launch_tokens_bind_identity_and_platform() {
        let (aesm, signer, mrenclave) = setup();
        let token = aesm.launch_token(mrenclave, &signer);
        assert!(token.authorises(mrenclave, &signer, 1));
        assert!(!token.authorises(mrenclave, &signer, 2));
        assert!(!token.authorises(mrenclave, &Signer::new("other"), 1));
        let other = Measurement::compute("other", EpcPages::new(512));
        assert!(!token.authorises(other, &signer, 1));
        assert_eq!(token.measurement(), mrenclave);
    }

    #[test]
    fn quote_flow_end_to_end() {
        let (aesm, signer, mrenclave) = setup();
        let report = aesm.report(mrenclave, &signer, 0xABCD);
        let quote = aesm.quote(&report).unwrap();
        assert_eq!(Aesm::verify_quote(&quote, mrenclave), QuoteVerdict::Trusted);
        assert_eq!(quote.report().report_data, 0xABCD);

        // Wrong expected measurement is flagged.
        let other = Measurement::compute("evil", EpcPages::new(512));
        assert_eq!(
            Aesm::verify_quote(&quote, other),
            QuoteVerdict::WrongMeasurement
        );
    }

    #[test]
    fn forged_quotes_fail_verification() {
        let (aesm, signer, mrenclave) = setup();
        let report = aesm.report(mrenclave, &signer, 0);
        let mut quote = aesm.quote(&report).unwrap();
        quote.attestation_key ^= 1; // tamper
        assert_eq!(
            Aesm::verify_quote(&quote, mrenclave),
            QuoteVerdict::InvalidSignature
        );
    }

    #[test]
    fn cross_platform_reports_cannot_be_quoted() {
        let (aesm, signer, mrenclave) = setup();
        let foreign = Aesm::new(99);
        let report = foreign.report(mrenclave, &signer, 0);
        assert!(matches!(
            aesm.quote(&report),
            Err(SgxError::AttestationFailed { .. })
        ));
    }

    #[test]
    fn sealing_round_trips_for_the_same_identity() {
        let (aesm, _, mrenclave) = setup();
        let sealed = aesm.seal(mrenclave, b"database encryption key");
        let plain = aesm.unseal(mrenclave, &sealed).unwrap();
        assert_eq!(plain, b"database encryption key");
    }

    #[test]
    fn sealing_rejects_wrong_identity_or_platform() {
        let (aesm, _, mrenclave) = setup();
        let sealed = aesm.seal(mrenclave, b"secret");
        let other_enclave = Measurement::compute("other", EpcPages::new(1));
        assert!(aesm.unseal(other_enclave, &sealed).is_err());
        let other_platform = Aesm::new(2);
        assert!(other_platform.unseal(mrenclave, &sealed).is_err());
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_signer_rejected() {
        let _ = Signer::new("");
    }
}

//! Secure enclave checkpoint/migration — the extension the paper names as
//! future work (§VIII), following the mechanism of Gu et al. (DSN '17)
//! summarised in §VII:
//!
//! * a **quiescent point** is reached before checkpointing (no thread may
//!   mutate enclave state mid-snapshot);
//! * the checkpoint is **encrypted under a migration key** transmitted
//!   through a channel established by remote attestation;
//! * the source enclave **self-destroys** after checkpointing, preventing
//!   *fork attacks* (the same state running twice);
//! * a checkpoint can be restored **at most once**, preventing *rollback
//!   attacks* (reviving an old state).
//!
//! The simulation encodes the fork/rollback protections structurally:
//! [`SgxDriver::checkpoint_enclave`] destroys the source enclave in the
//! same operation, and [`EnclaveCheckpoint`] is a linear token — it is not
//! `Clone`, and [`SgxDriver::restore_enclave`] consumes it by value.
//!
//! [`SgxDriver::checkpoint_enclave`]: crate::driver::SgxDriver::checkpoint_enclave
//! [`SgxDriver::restore_enclave`]: crate::driver::SgxDriver::restore_enclave

use serde::{Deserialize, Serialize};

use crate::attestation::Measurement;
use crate::units::EpcPages;

/// A symmetric migration key, agreed between source and target platforms
/// over an attested channel (the quotes of both sides verified first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MigrationKey(u64);

impl MigrationKey {
    /// Derives the key both endpoints of an attested channel arrive at.
    /// Deterministic in the two platforms and a session nonce, and
    /// symmetric in the endpoints.
    pub fn derive(platform_a: u64, platform_b: u64, session_nonce: u64) -> Self {
        let (lo, hi) = if platform_a <= platform_b {
            (platform_a, platform_b)
        } else {
            (platform_b, platform_a)
        };
        let mut k = lo ^ hi.rotate_left(23) ^ session_nonce.rotate_left(46);
        k = (k ^ (k >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        MigrationKey(k ^ (k >> 27))
    }

    pub(crate) fn as_u64(self) -> u64 {
        self.0
    }
}

/// An encrypted, single-use enclave checkpoint.
///
/// Deliberately **not `Clone`**: restoring consumes the checkpoint, so a
/// given snapshot can run at most once (rollback/fork protection at the
/// type level, mirroring the self-destroy + freshness protocol of the
/// real mechanism).
#[derive(Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnclaveCheckpoint {
    pub(crate) measurement: Measurement,
    pub(crate) committed: EpcPages,
    pub(crate) ecalls: u64,
    pub(crate) key_tag: u64,
    pub(crate) source_platform: u64,
}

impl EnclaveCheckpoint {
    /// Identity of the checkpointed enclave.
    pub fn measurement(&self) -> Measurement {
        self.measurement
    }

    /// EPC pages the enclave owned when checkpointed (its restored size).
    pub fn committed(&self) -> EpcPages {
        self.committed
    }

    /// The platform the checkpoint was taken on.
    pub fn source_platform(&self) -> u64 {
        self.source_platform
    }

    /// Size of the serialised, encrypted snapshot on the wire — the EPC
    /// contents plus metadata — used by the cluster layer to model the
    /// transfer time across the paper's 1 Gbit/s network.
    pub fn wire_size(&self) -> crate::units::ByteSize {
        self.committed.to_bytes() + crate::units::ByteSize::from_kib(64)
    }

    /// Whether `key` decrypts this checkpoint.
    pub(crate) fn opens_with(&self, key: MigrationKey) -> bool {
        self.key_tag == key.as_u64().wrapping_mul(0x94D0_49BB_1331_11EB)
    }

    pub(crate) fn tag_for(key: MigrationKey) -> u64 {
        key.as_u64().wrapping_mul(0x94D0_49BB_1331_11EB)
    }
}

/// A failed restore, handing the (still unconsumed) checkpoint back so
/// the caller can retry elsewhere — e.g. re-restore on the source node
/// after the target refused admission.
#[derive(Debug)]
pub struct RestoreError {
    /// Why the restore failed.
    pub error: crate::SgxError,
    /// The snapshot, still valid for exactly one restore.
    pub checkpoint: EnclaveCheckpoint,
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "restore failed: {}", self.error)
    }
}

impl std::error::Error for RestoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_derivation_is_symmetric_and_session_bound() {
        let a = MigrationKey::derive(1, 2, 99);
        let b = MigrationKey::derive(2, 1, 99);
        assert_eq!(a, b);
        assert_ne!(a, MigrationKey::derive(1, 2, 100));
        assert_ne!(a, MigrationKey::derive(1, 3, 99));
    }

    #[test]
    fn checkpoint_accessors() {
        let key = MigrationKey::derive(1, 2, 0);
        let cp = EnclaveCheckpoint {
            measurement: Measurement::compute("app", EpcPages::new(256)),
            committed: EpcPages::new(256),
            ecalls: 7,
            key_tag: EnclaveCheckpoint::tag_for(key),
            source_platform: 1,
        };
        assert_eq!(cp.committed(), EpcPages::new(256));
        assert_eq!(cp.source_platform(), 1);
        assert!(cp.opens_with(key));
        assert!(!cp.opens_with(MigrationKey::derive(1, 2, 1)));
        // 1 MiB of pages + 64 KiB of metadata.
        assert_eq!(cp.wire_size().as_bytes(), 256 * 4096 + 65_536);
    }
}

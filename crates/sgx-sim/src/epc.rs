//! The Enclave Page Cache: shared, scarce, contended.
//!
//! The EPC lives in Processor Reserved Memory and is shared by *all*
//! enclaves on a machine (§II). This module does page-granular accounting:
//! which enclave owns how many pages, how many of those are resident in the
//! EPC versus paged out to (encrypted) system memory, and how much paging
//! traffic an allocation caused. The orchestrator layers read these numbers
//! through the driver to make placement decisions.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::SgxError;
use crate::ids::EnclaveId;
use crate::mee::MeeStats;
use crate::units::{ByteSize, EpcPages, PRM_SIZE, USABLE_EPC, USABLE_EPC_FRACTION};

/// Static configuration of a machine's EPC.
///
/// # Examples
///
/// ```
/// use sgx_sim::epc::EpcConfig;
/// use sgx_sim::units::ByteSize;
///
/// // The paper's hardware: 128 MiB PRM, 93.5 MiB usable.
/// let current = EpcConfig::sgx1_default();
/// assert_eq!(current.usable.as_mib_f64(), 93.5);
///
/// // A hypothetical SGX2-era machine for the Fig. 7 sweep.
/// let future = EpcConfig::with_prm(ByteSize::from_mib(256));
/// assert_eq!(future.usable.as_mib_f64(), 187.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpcConfig {
    /// Total Processor Reserved Memory (UEFI-configured; reboot to change).
    pub prm: ByteSize,
    /// Memory usable by applications after SGX metadata overhead.
    pub usable: ByteSize,
    /// Whether the driver's paging mechanism may evict pages to system
    /// memory, allowing over-commitment at a steep performance cost. The
    /// paper's orchestrator deliberately avoids ever relying on this.
    pub paging_enabled: bool,
}

impl EpcConfig {
    /// The paper's hardware configuration: 128 MiB PRM / 93.5 MiB usable,
    /// paging available.
    pub fn sgx1_default() -> Self {
        EpcConfig {
            prm: PRM_SIZE,
            usable: USABLE_EPC,
            paging_enabled: true,
        }
    }

    /// Derives a configuration for an arbitrary PRM size, keeping the
    /// 93.5/128 usable fraction observed on real hardware. Used by the
    /// Fig. 7 "future SGX" sweep (32–256 MiB).
    pub fn with_prm(prm: ByteSize) -> Self {
        EpcConfig {
            prm,
            usable: prm.mul_f64(USABLE_EPC_FRACTION),
            paging_enabled: true,
        }
    }

    /// Disables the paging mechanism; allocations beyond the usable EPC
    /// then fail instead of thrashing.
    pub fn without_paging(mut self) -> Self {
        self.paging_enabled = false;
        self
    }

    /// Usable pages under this configuration.
    pub fn usable_pages(&self) -> EpcPages {
        self.usable.to_epc_pages_ceil()
    }
}

impl Default for EpcConfig {
    fn default() -> Self {
        EpcConfig::sgx1_default()
    }
}

/// Per-enclave page accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EnclaveUsage {
    /// Pages the enclave owns (committed via `EADD`/`EAUG`).
    pub committed: EpcPages,
    /// Pages currently resident in the EPC.
    pub resident: EpcPages,
    /// Pages evicted to encrypted system memory.
    pub paged_out: EpcPages,
    /// Cumulative page faults served for this enclave.
    pub faults: u64,
}

/// Outcome of a commit or touch operation, reporting paging activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PagingActivity {
    /// Pages evicted from other (or the same) enclaves to make room.
    pub evicted: EpcPages,
    /// Page faults served (pages brought back into the EPC).
    pub faults: u64,
}

/// The Enclave Page Cache allocator for one machine.
///
/// Maintains the invariant `free + Σ resident == usable` at all times, and
/// `resident <= committed` per enclave.
///
/// # Examples
///
/// ```
/// use sgx_sim::epc::{Epc, EpcConfig};
/// use sgx_sim::units::EpcPages;
///
/// let mut epc = Epc::new(EpcConfig::sgx1_default());
/// let enclave = epc.register_enclave();
/// epc.commit(enclave, EpcPages::from_mib_ceil(10))?;
/// assert_eq!(epc.usage(enclave).unwrap().resident, EpcPages::from_mib_ceil(10));
/// # Ok::<(), sgx_sim::SgxError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Epc {
    config: EpcConfig,
    free: EpcPages,
    enclaves: BTreeMap<EnclaveId, EnclaveUsage>,
    next_id: u64,
    total_evictions: u64,
    total_faults: u64,
    mee: MeeStats,
}

impl Epc {
    /// Creates an empty EPC under the given configuration.
    pub fn new(config: EpcConfig) -> Self {
        Epc {
            free: config.usable_pages(),
            config,
            enclaves: BTreeMap::new(),
            next_id: 0,
            total_evictions: 0,
            total_faults: 0,
            mee: MeeStats::default(),
        }
    }

    /// The static configuration.
    pub fn config(&self) -> &EpcConfig {
        &self.config
    }

    /// Total usable pages (the `sgx_nr_total_epc_pages` module parameter).
    pub fn total_pages(&self) -> EpcPages {
        self.config.usable_pages()
    }

    /// Pages not currently resident for any enclave (the
    /// `sgx_nr_free_pages` module parameter).
    pub fn free_pages(&self) -> EpcPages {
        self.free
    }

    /// Total pages committed across all enclaves (may exceed
    /// [`total_pages`](Self::total_pages) when paging is active).
    pub fn committed_pages(&self) -> EpcPages {
        self.enclaves.values().map(|u| u.committed).sum()
    }

    /// Total pages resident across all enclaves.
    pub fn resident_pages(&self) -> EpcPages {
        self.enclaves.values().map(|u| u.resident).sum()
    }

    /// Ratio of committed pages to usable pages; values above 1.0 mean the
    /// machine is over-committed and paging.
    pub fn overcommit_ratio(&self) -> f64 {
        let usable = self.total_pages().count();
        if usable == 0 {
            return 0.0;
        }
        self.committed_pages().count() as f64 / usable as f64
    }

    /// Lifetime eviction count.
    pub fn total_evictions(&self) -> u64 {
        self.total_evictions
    }

    /// Lifetime page-fault count.
    pub fn total_faults(&self) -> u64 {
        self.total_faults
    }

    /// Memory Encryption Engine counters: every eviction encrypts a page
    /// out of the PRM (and inserts a digest in the integrity tree), every
    /// fault decrypts and verifies one on the way back (§II).
    pub fn mee(&self) -> &MeeStats {
        &self.mee
    }

    /// Number of registered enclaves.
    pub fn enclave_count(&self) -> usize {
        self.enclaves.len()
    }

    /// Registers a new enclave (the accounting side of `ECREATE`) and
    /// returns its identifier.
    pub fn register_enclave(&mut self) -> EnclaveId {
        let id = EnclaveId::new(self.next_id);
        self.next_id += 1;
        self.enclaves.insert(id, EnclaveUsage::default());
        id
    }

    /// Removes an enclave, releasing all its pages (the accounting side of
    /// `EREMOVE` on teardown).
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::UnknownEnclave`] if the enclave is not
    /// registered.
    pub fn deregister_enclave(&mut self, id: EnclaveId) -> Result<EnclaveUsage, SgxError> {
        let usage = self
            .enclaves
            .remove(&id)
            .ok_or(SgxError::UnknownEnclave(id))?;
        self.free += usage.resident;
        Ok(usage)
    }

    /// Per-enclave usage, or `None` when the enclave is not registered.
    pub fn usage(&self, id: EnclaveId) -> Option<EnclaveUsage> {
        self.enclaves.get(&id).copied()
    }

    /// Commits `pages` additional pages to `id` (`EADD` before `EINIT`, or
    /// `EAUG` on SGX2), bringing them resident — evicting victims when the
    /// free pool runs dry and paging is enabled.
    ///
    /// # Errors
    ///
    /// * [`SgxError::UnknownEnclave`] — `id` is not registered.
    /// * [`SgxError::EpcOverCapacity`] — the enclave's committed size would
    ///   exceed the whole usable EPC while paging is disabled.
    /// * [`SgxError::EpcExhausted`] — not enough free pages and paging is
    ///   disabled.
    pub fn commit(&mut self, id: EnclaveId, pages: EpcPages) -> Result<PagingActivity, SgxError> {
        if !self.enclaves.contains_key(&id) {
            return Err(SgxError::UnknownEnclave(id));
        }
        if !self.config.paging_enabled {
            let committed = self.enclaves[&id].committed;
            if committed + pages > self.total_pages() {
                return Err(SgxError::EpcOverCapacity {
                    requested: committed + pages,
                    usable: self.total_pages(),
                });
            }
            if pages > self.free {
                return Err(SgxError::EpcExhausted {
                    requested: pages,
                    free: self.free,
                });
            }
        }

        let mut activity = PagingActivity::default();
        let shortfall = pages.saturating_sub(self.free);
        if !shortfall.is_zero() {
            activity.evicted = self.evict(shortfall, Some(id));
        }
        let grabbed = pages.min(self.free);
        self.free -= grabbed;
        let usage = self.enclaves.get_mut(&id).expect("checked above");
        usage.committed += pages;
        usage.resident += grabbed;
        usage.paged_out += pages - grabbed;
        Ok(activity)
    }

    /// Releases `pages` committed pages from `id` (SGX2 `EMODT`/trim).
    /// Paged-out pages are released first; resident pages are then returned
    /// to the free pool.
    ///
    /// # Errors
    ///
    /// * [`SgxError::UnknownEnclave`] — `id` is not registered.
    /// * [`SgxError::InvalidState`] — the enclave owns fewer than `pages`.
    pub fn release(&mut self, id: EnclaveId, pages: EpcPages) -> Result<(), SgxError> {
        let usage = self
            .enclaves
            .get_mut(&id)
            .ok_or(SgxError::UnknownEnclave(id))?;
        if usage.committed < pages {
            return Err(SgxError::InvalidState {
                enclave: id,
                reason: "cannot release more pages than committed",
            });
        }
        let from_swap = pages.min(usage.paged_out);
        usage.paged_out -= from_swap;
        let from_resident = pages - from_swap;
        usage.resident -= from_resident;
        usage.committed -= pages;
        self.free += from_resident;
        Ok(())
    }

    /// Touches `pages` of `id`'s committed pages, faulting them in if they
    /// were paged out (and evicting victims to make room).
    ///
    /// # Errors
    ///
    /// * [`SgxError::UnknownEnclave`] — `id` is not registered.
    /// * [`SgxError::InvalidState`] — touching more pages than committed.
    pub fn touch(&mut self, id: EnclaveId, pages: EpcPages) -> Result<PagingActivity, SgxError> {
        let usage = self
            .enclaves
            .get(&id)
            .copied()
            .ok_or(SgxError::UnknownEnclave(id))?;
        if pages > usage.committed {
            return Err(SgxError::InvalidState {
                enclave: id,
                reason: "cannot touch more pages than committed",
            });
        }
        let mut activity = PagingActivity::default();
        let missing = pages.saturating_sub(usage.resident);
        if missing.is_zero() {
            return Ok(activity);
        }
        let shortfall = missing.saturating_sub(self.free);
        if !shortfall.is_zero() {
            activity.evicted = self.evict(shortfall, Some(id));
        }
        let faulted = missing.min(self.free);
        self.free -= faulted;
        let usage = self.enclaves.get_mut(&id).expect("checked above");
        usage.resident += faulted;
        usage.paged_out -= faulted;
        usage.faults += faulted.count();
        activity.faults = faulted.count();
        self.total_faults += faulted.count();
        self.mee.record_faults(faulted);
        Ok(activity)
    }

    /// Evicts up to `target` resident pages, preferring the enclave with
    /// the most resident pages (deterministic tie-break by lowest id) and
    /// skipping `protect` so an enclave does not steal from itself while
    /// faulting in.
    fn evict(&mut self, target: EpcPages, protect: Option<EnclaveId>) -> EpcPages {
        let mut evicted = EpcPages::ZERO;
        while evicted < target {
            let victim = self
                .enclaves
                .iter()
                .filter(|(id, u)| Some(**id) != protect && !u.resident.is_zero())
                .max_by_key(|(id, u)| (u.resident, std::cmp::Reverse(**id)))
                .map(|(id, _)| *id);
            let Some(victim) = victim else { break };
            let usage = self.enclaves.get_mut(&victim).expect("victim exists");
            let take = (target - evicted).min(usage.resident);
            usage.resident -= take;
            usage.paged_out += take;
            self.free += take;
            evicted += take;
            self.total_evictions += take.count();
            self.mee.record_evictions(take);
        }
        evicted
    }

    /// Iterates over `(enclave, usage)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (EnclaveId, EnclaveUsage)> + '_ {
        self.enclaves.iter().map(|(id, u)| (*id, *u))
    }

    /// Checks the internal accounting invariant; used by tests and
    /// debug assertions.
    pub fn check_invariants(&self) -> bool {
        let resident: EpcPages = self.enclaves.values().map(|u| u.resident).sum();
        let per_enclave_ok = self
            .enclaves
            .values()
            .all(|u| u.resident + u.paged_out == u.committed);
        self.free + resident == self.total_pages() && per_enclave_ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_epc(pages: u64, paging: bool) -> Epc {
        let config = EpcConfig {
            prm: ByteSize::from_bytes(pages * 4096 * 2),
            usable: ByteSize::from_bytes(pages * 4096),
            paging_enabled: paging,
        };
        Epc::new(config)
    }

    #[test]
    fn default_config_matches_paper() {
        let epc = Epc::new(EpcConfig::sgx1_default());
        assert_eq!(epc.total_pages().count(), 23_936);
        assert_eq!(epc.free_pages(), epc.total_pages());
        assert!(epc.check_invariants());
    }

    #[test]
    fn commit_within_capacity() {
        let mut epc = small_epc(100, false);
        let a = epc.register_enclave();
        let act = epc.commit(a, EpcPages::new(40)).unwrap();
        assert_eq!(act.evicted, EpcPages::ZERO);
        assert_eq!(epc.free_pages(), EpcPages::new(60));
        assert_eq!(epc.usage(a).unwrap().resident, EpcPages::new(40));
        assert!(epc.check_invariants());
    }

    #[test]
    fn commit_beyond_capacity_fails_without_paging() {
        let mut epc = small_epc(100, false);
        let a = epc.register_enclave();
        epc.commit(a, EpcPages::new(90)).unwrap();
        let err = epc.commit(a, EpcPages::new(20)).unwrap_err();
        assert!(matches!(err, SgxError::EpcOverCapacity { .. }));
        // A second enclave hitting the free-pool wall gets EpcExhausted.
        let b = epc.register_enclave();
        let err = epc.commit(b, EpcPages::new(20)).unwrap_err();
        assert!(matches!(err, SgxError::EpcExhausted { .. }));
        assert!(epc.check_invariants());
    }

    #[test]
    fn overcommit_pages_out_victims() {
        let mut epc = small_epc(100, true);
        let a = epc.register_enclave();
        let b = epc.register_enclave();
        epc.commit(a, EpcPages::new(80)).unwrap();
        let act = epc.commit(b, EpcPages::new(50)).unwrap();
        assert_eq!(act.evicted, EpcPages::new(30));
        assert_eq!(epc.usage(a).unwrap().paged_out, EpcPages::new(30));
        assert_eq!(epc.usage(b).unwrap().resident, EpcPages::new(50));
        assert!(epc.overcommit_ratio() > 1.0);
        assert!(epc.check_invariants());
    }

    #[test]
    fn touch_faults_pages_back_in() {
        let mut epc = small_epc(100, true);
        let a = epc.register_enclave();
        let b = epc.register_enclave();
        epc.commit(a, EpcPages::new(80)).unwrap();
        epc.commit(b, EpcPages::new(50)).unwrap(); // a loses 30 pages
        let act = epc.touch(a, EpcPages::new(80)).unwrap();
        assert_eq!(act.faults, 30);
        assert_eq!(epc.usage(a).unwrap().resident, EpcPages::new(80));
        // b lost pages in turn.
        assert_eq!(epc.usage(b).unwrap().paged_out, EpcPages::new(30));
        assert_eq!(epc.total_faults(), 30);
        assert!(epc.check_invariants());
    }

    #[test]
    fn touch_checks_committed_bound() {
        let mut epc = small_epc(10, true);
        let a = epc.register_enclave();
        epc.commit(a, EpcPages::new(5)).unwrap();
        let err = epc.touch(a, EpcPages::new(6)).unwrap_err();
        assert!(matches!(err, SgxError::InvalidState { .. }));
    }

    #[test]
    fn release_prefers_paged_out() {
        let mut epc = small_epc(100, true);
        let a = epc.register_enclave();
        let b = epc.register_enclave();
        epc.commit(a, EpcPages::new(80)).unwrap();
        epc.commit(b, EpcPages::new(50)).unwrap();
        // a: 50 resident / 30 paged out. Releasing 40 takes the 30 swapped
        // pages first, then 10 resident ones.
        epc.release(a, EpcPages::new(40)).unwrap();
        let ua = epc.usage(a).unwrap();
        assert_eq!(ua.committed, EpcPages::new(40));
        assert_eq!(ua.paged_out, EpcPages::ZERO);
        assert_eq!(ua.resident, EpcPages::new(40));
        assert!(epc.check_invariants());
    }

    #[test]
    fn release_more_than_committed_fails() {
        let mut epc = small_epc(10, false);
        let a = epc.register_enclave();
        epc.commit(a, EpcPages::new(5)).unwrap();
        assert!(epc.release(a, EpcPages::new(6)).is_err());
    }

    #[test]
    fn deregister_frees_resident_pages() {
        let mut epc = small_epc(100, false);
        let a = epc.register_enclave();
        epc.commit(a, EpcPages::new(40)).unwrap();
        let usage = epc.deregister_enclave(a).unwrap();
        assert_eq!(usage.committed, EpcPages::new(40));
        assert_eq!(epc.free_pages(), EpcPages::new(100));
        assert!(epc.deregister_enclave(a).is_err());
        assert!(epc.check_invariants());
    }

    #[test]
    fn unknown_enclave_operations_fail() {
        let mut epc = small_epc(10, false);
        let ghost = EnclaveId::new(999);
        assert!(matches!(
            epc.commit(ghost, EpcPages::ONE),
            Err(SgxError::UnknownEnclave(_))
        ));
        assert!(epc.touch(ghost, EpcPages::ONE).is_err());
        assert!(epc.release(ghost, EpcPages::ONE).is_err());
        assert_eq!(epc.usage(ghost), None);
    }

    #[test]
    fn eviction_targets_largest_enclave_first() {
        let mut epc = small_epc(100, true);
        let small = epc.register_enclave();
        let large = epc.register_enclave();
        epc.commit(small, EpcPages::new(20)).unwrap();
        epc.commit(large, EpcPages::new(60)).unwrap();
        let newcomer = epc.register_enclave();
        epc.commit(newcomer, EpcPages::new(30)).unwrap(); // needs 10 evictions
        assert_eq!(epc.usage(large).unwrap().paged_out, EpcPages::new(10));
        assert_eq!(epc.usage(small).unwrap().paged_out, EpcPages::ZERO);
    }

    #[test]
    fn mee_accounts_paging_traffic() {
        let mut epc = small_epc(100, true);
        let a = epc.register_enclave();
        let b = epc.register_enclave();
        epc.commit(a, EpcPages::new(80)).unwrap();
        epc.commit(b, EpcPages::new(50)).unwrap(); // evicts 30 of a
        assert_eq!(epc.mee().bytes_encrypted, 30 * 4096);
        assert_eq!(epc.mee().digests_inserted, 30);
        epc.touch(a, EpcPages::new(80)).unwrap(); // faults 30 back in
        assert_eq!(epc.mee().bytes_decrypted, 30 * 4096);
        assert_eq!(epc.mee().integrity_checks, 30);
        assert!(epc.mee().total_traffic().as_bytes() > 0);
    }

    #[test]
    fn with_prm_keeps_usable_fraction() {
        let cfg = EpcConfig::with_prm(ByteSize::from_mib(64));
        assert!((cfg.usable.as_mib_f64() - 46.75).abs() < 0.01);
        let cfg = EpcConfig::with_prm(ByteSize::from_mib(256));
        assert!((cfg.usable.as_mib_f64() - 187.0).abs() < 0.01);
    }
}

//! The SGX latency model measured in §VI-D (Fig. 6) of the paper.
//!
//! Startup of an SGX process has two components:
//!
//! 1. **PSW service startup** — because containers stay unprivileged, each
//!    pod runs its own Platform Software / AESM instance, costing a roughly
//!    constant ≈100 ms.
//! 2. **Enclave memory allocation** — all enclave memory must be committed
//!    (and measured for attestation) at build time. The paper observes two
//!    linear regimes: 1.6 ms/MiB while the request fits in the usable EPC,
//!    and a fixed ≈200 ms penalty plus 4.5 ms/MiB beyond it.
//!
//! Standard (non-SGX) jobs start in under a millisecond.
//!
//! On top of startup, the model exposes the *paging slowdown* suffered by
//! enclaves whose aggregate working set over-commits the EPC — up to the
//! 1000× reported by SCONE and quoted in §V-A.

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use des::rng::sample_normal;
use des::SimDuration;

use crate::units::ByteSize;

/// Parameters of the startup/latency model. All defaults come straight
/// from the paper's measurements.
///
/// # Examples
///
/// ```
/// use sgx_sim::cost::CostModel;
/// use sgx_sim::units::ByteSize;
///
/// let model = CostModel::paper_defaults();
/// // Allocating 32 MiB inside the usable EPC: 32 × 1.6 ms = 51.2 ms.
/// let d = model.allocation_time(ByteSize::from_mib(32), ByteSize::from_mib_f64(93.5));
/// assert_eq!(d.as_millis(), 51);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Mean PSW/AESM service startup time, ms (paper: ≈100 ms).
    pub psw_startup_ms: f64,
    /// Standard deviation of PSW startup, ms ("virtually the same in all
    /// runs" — small jitter).
    pub psw_startup_jitter_ms: f64,
    /// Allocation rate below the usable-EPC limit, ms per MiB (paper: 1.6).
    pub alloc_ms_per_mib_below: f64,
    /// Allocation rate above the usable-EPC limit, ms per MiB (paper: 4.5).
    pub alloc_ms_per_mib_above: f64,
    /// Fixed delay added once the request crosses the usable-EPC limit,
    /// ms (paper: ≈200 ms).
    pub alloc_over_limit_fixed_ms: f64,
    /// Upper bound on standard-job startup, ms (paper: "steadily took less
    /// than 1 ms").
    pub standard_startup_max_ms: f64,
    /// Maximum paging slowdown factor (SCONE: up to 1000×).
    pub max_paging_slowdown: f64,
    /// How quickly slowdown ramps with over-commitment; the slowdown for an
    /// over-commit ratio `r > 1` is
    /// `min(max, 1 + slope · (r − 1))`.
    pub paging_slowdown_slope: f64,
    /// Effective network throughput between nodes, MiB/s (the paper's
    /// testbed uses a 1 Gbit/s switched network ≈ 119 MiB/s).
    pub network_mib_per_sec: f64,
    /// Fixed cost of establishing the attested migration channel
    /// (mutual remote attestation + key agreement), ms.
    pub migration_handshake_ms: f64,
}

impl CostModel {
    /// The constants measured in the paper.
    pub fn paper_defaults() -> Self {
        CostModel {
            psw_startup_ms: 100.0,
            psw_startup_jitter_ms: 3.0,
            alloc_ms_per_mib_below: 1.6,
            alloc_ms_per_mib_above: 4.5,
            alloc_over_limit_fixed_ms: 200.0,
            standard_startup_max_ms: 1.0,
            max_paging_slowdown: 1000.0,
            // Calibrated so a 2× over-commit costs ~10×: well past "avoid
            // at all cost" while staying below the SCONE worst case.
            paging_slowdown_slope: 9.0,
            network_mib_per_sec: 119.2,
            migration_handshake_ms: 50.0,
        }
    }

    /// Time to ship `bytes` across the cluster network plus the attested
    /// channel handshake — the latency of an enclave migration (§VIII).
    pub fn migration_transfer(&self, bytes: ByteSize) -> SimDuration {
        let transfer_ms = bytes.as_mib_f64() / self.network_mib_per_sec * 1000.0;
        SimDuration::from_millis_f64(self.migration_handshake_ms + transfer_ms)
    }

    /// Deterministic (jitter-free) PSW startup time.
    pub fn psw_startup(&self) -> SimDuration {
        SimDuration::from_millis_f64(self.psw_startup_ms)
    }

    /// PSW startup with Gaussian jitter, clamped at zero.
    pub fn psw_startup_jittered<R: Rng + RngExt + ?Sized>(&self, rng: &mut R) -> SimDuration {
        let ms = sample_normal(rng, self.psw_startup_ms, self.psw_startup_jitter_ms).max(0.0);
        SimDuration::from_millis_f64(ms)
    }

    /// Enclave memory allocation time for a `request` given the machine's
    /// `usable` EPC, reproducing the two linear regimes of Fig. 6.
    pub fn allocation_time(&self, request: ByteSize, usable: ByteSize) -> SimDuration {
        let req_mib = request.as_mib_f64();
        let usable_mib = usable.as_mib_f64();
        let ms = if req_mib <= usable_mib {
            self.alloc_ms_per_mib_below * req_mib
        } else {
            self.alloc_ms_per_mib_below * usable_mib
                + self.alloc_over_limit_fixed_ms
                + self.alloc_ms_per_mib_above * (req_mib - usable_mib)
        };
        SimDuration::from_millis_f64(ms)
    }

    /// Full SGX process startup: PSW service plus enclave allocation.
    pub fn sgx_startup<R: Rng + RngExt + ?Sized>(
        &self,
        rng: &mut R,
        request: ByteSize,
        usable: ByteSize,
    ) -> SimDuration {
        self.psw_startup_jittered(rng) + self.allocation_time(request, usable)
    }

    /// Startup time of a standard (non-SGX) job: uniform below the paper's
    /// 1 ms bound.
    pub fn standard_startup<R: Rng + RngExt + ?Sized>(&self, rng: &mut R) -> SimDuration {
        let ms = rng.random_range(0.0..self.standard_startup_max_ms);
        SimDuration::from_millis_f64(ms)
    }

    /// Runtime slowdown factor for enclaves on a machine whose committed
    /// EPC over-commits the usable EPC by `overcommit_ratio` (committed ÷
    /// usable). Returns 1.0 at or below full occupancy.
    ///
    /// # Panics
    ///
    /// Panics if `overcommit_ratio` is negative or non-finite.
    pub fn paging_slowdown(&self, overcommit_ratio: f64) -> f64 {
        assert!(
            overcommit_ratio.is_finite() && overcommit_ratio >= 0.0,
            "overcommit ratio must be finite and non-negative, got {overcommit_ratio}"
        );
        if overcommit_ratio <= 1.0 {
            1.0
        } else {
            (1.0 + self.paging_slowdown_slope * (overcommit_ratio - 1.0))
                .min(self.max_paging_slowdown)
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::USABLE_EPC;
    use des::rng::seeded_rng;

    #[test]
    fn allocation_below_limit_is_linear_at_1_6ms_per_mib() {
        let m = CostModel::paper_defaults();
        let d = m.allocation_time(ByteSize::from_mib(64), USABLE_EPC);
        assert!((d.as_millis_f64() - 102.4).abs() < 0.1, "{d}");
    }

    #[test]
    fn allocation_above_limit_adds_fixed_delay_and_steeper_slope() {
        let m = CostModel::paper_defaults();
        let d = m.allocation_time(ByteSize::from_mib(128), USABLE_EPC);
        // 93.5 × 1.6 + 200 + (128 − 93.5) × 4.5 = 149.6 + 200 + 155.25
        assert!((d.as_millis_f64() - 504.85).abs() < 0.1, "{d}");
    }

    #[test]
    fn allocation_is_continuous_up_to_the_fixed_jump() {
        let m = CostModel::paper_defaults();
        let just_below = m.allocation_time(ByteSize::from_mib_f64(93.5), USABLE_EPC);
        let just_above = m.allocation_time(ByteSize::from_mib_f64(93.6), USABLE_EPC);
        let jump = just_above.as_millis_f64() - just_below.as_millis_f64();
        assert!((jump - 200.45).abs() < 0.1, "jump={jump}");
    }

    #[test]
    fn psw_startup_is_about_100ms() {
        let m = CostModel::paper_defaults();
        assert_eq!(m.psw_startup().as_millis(), 100);
        let mut rng = seeded_rng(1);
        let mean = (0..1000)
            .map(|_| m.psw_startup_jittered(&mut rng).as_millis_f64())
            .sum::<f64>()
            / 1000.0;
        assert!((mean - 100.0).abs() < 1.0, "mean={mean}");
    }

    #[test]
    fn standard_startup_below_1ms() {
        let m = CostModel::paper_defaults();
        let mut rng = seeded_rng(2);
        for _ in 0..1000 {
            assert!(m.standard_startup(&mut rng) <= SimDuration::from_millis(1));
        }
    }

    #[test]
    fn sgx_startup_combines_both_terms() {
        let m = CostModel::paper_defaults();
        let mut rng = seeded_rng(3);
        let d = m.sgx_startup(&mut rng, ByteSize::from_mib(32), USABLE_EPC);
        // ≈ 100 ms PSW + 51.2 ms allocation.
        assert!(d.as_millis() > 130 && d.as_millis() < 180, "{d}");
    }

    #[test]
    fn paging_slowdown_kicks_in_above_full_occupancy() {
        let m = CostModel::paper_defaults();
        assert_eq!(m.paging_slowdown(0.0), 1.0);
        assert_eq!(m.paging_slowdown(1.0), 1.0);
        assert!(m.paging_slowdown(1.5) > 1.0);
        assert!(m.paging_slowdown(2.0) > m.paging_slowdown(1.5));
        assert_eq!(m.paging_slowdown(1e6), m.max_paging_slowdown);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn paging_slowdown_rejects_negative_ratio() {
        let m = CostModel::paper_defaults();
        let _ = m.paging_slowdown(-0.1);
    }

    #[test]
    fn migration_transfer_scales_with_size() {
        let m = CostModel::paper_defaults();
        let empty = m.migration_transfer(ByteSize::ZERO);
        assert_eq!(empty.as_millis(), 50); // handshake only
                                           // ≈119.2 MiB takes ≈1 s on the 1 Gbit/s network.
        let one_sec = m.migration_transfer(ByteSize::from_mib_f64(119.2));
        assert!((one_sec.as_millis_f64() - 1050.0).abs() < 1.0, "{one_sec}");
    }
}

//! Enclave lifecycle state machine (Fig. 1 of the paper).
//!
//! An enclave is created by the untrusted part of an application
//! (`ECREATE`), populated with pages (`EADD`), initialised with a launch
//! token (`EINIT`), and then entered via `ecall`s through the call gate.
//! On SGX1 every page must be added before initialisation; SGX2 adds EDMM
//! (`EAUG`/trim) for dynamic growth while running.

use serde::{Deserialize, Serialize};

use crate::ids::{CgroupPath, EnclaveId, Pid};
use crate::units::EpcPages;
use crate::SgxVersion;

/// Lifecycle states of an enclave.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EnclaveState {
    /// Created (`ECREATE` issued); pages may be added, no code runs yet.
    Created,
    /// Initialised (`EINIT` succeeded); trusted functions may be called.
    Initialized,
    /// Torn down; all EPC pages returned.
    Destroyed,
}

impl std::fmt::Display for EnclaveState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnclaveState::Created => f.write_str("created"),
            EnclaveState::Initialized => f.write_str("initialized"),
            EnclaveState::Destroyed => f.write_str("destroyed"),
        }
    }
}

/// Bookkeeping record for one enclave, owned by the driver.
///
/// The driver exposes the mutating operations; this type only answers
/// questions about the enclave's identity and lifecycle.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Enclave {
    id: EnclaveId,
    owner: Pid,
    pod: CgroupPath,
    version: SgxVersion,
    state: EnclaveState,
    committed: EpcPages,
    ecalls: u64,
}

impl Enclave {
    pub(crate) fn new(id: EnclaveId, owner: Pid, pod: CgroupPath, version: SgxVersion) -> Self {
        Enclave {
            id,
            owner,
            pod,
            version,
            state: EnclaveState::Created,
            committed: EpcPages::ZERO,
            ecalls: 0,
        }
    }

    /// The enclave's identifier.
    pub fn id(&self) -> EnclaveId {
        self.id
    }

    /// The process that owns the enclave.
    pub fn owner(&self) -> Pid {
        self.owner
    }

    /// The cgroup path of the pod the enclave runs in.
    pub fn pod(&self) -> &CgroupPath {
        &self.pod
    }

    /// The SGX generation the enclave was built for.
    pub fn version(&self) -> SgxVersion {
        self.version
    }

    /// Current lifecycle state.
    pub fn state(&self) -> EnclaveState {
        self.state
    }

    /// Pages the enclave has committed (mirrors the EPC accounting).
    pub fn committed(&self) -> EpcPages {
        self.committed
    }

    /// Number of `ecall`s performed.
    pub fn ecalls(&self) -> u64 {
        self.ecalls
    }

    pub(crate) fn set_state(&mut self, state: EnclaveState) {
        self.state = state;
    }

    pub(crate) fn add_committed(&mut self, pages: EpcPages) {
        self.committed += pages;
    }

    pub(crate) fn sub_committed(&mut self, pages: EpcPages) {
        self.committed -= pages;
    }

    pub(crate) fn record_ecall(&mut self) {
        self.ecalls += 1;
    }

    pub(crate) fn set_ecalls(&mut self, ecalls: u64) {
        self.ecalls = ecalls;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_enclave_starts_created_and_empty() {
        let e = Enclave::new(
            EnclaveId::new(1),
            Pid::new(10),
            CgroupPath::new("/pod"),
            SgxVersion::Sgx1,
        );
        assert_eq!(e.state(), EnclaveState::Created);
        assert_eq!(e.committed(), EpcPages::ZERO);
        assert_eq!(e.ecalls(), 0);
        assert_eq!(e.owner(), Pid::new(10));
        assert_eq!(e.pod().as_str(), "/pod");
        assert_eq!(e.version(), SgxVersion::Sgx1);
    }

    #[test]
    fn states_display() {
        assert_eq!(EnclaveState::Created.to_string(), "created");
        assert_eq!(EnclaveState::Initialized.to_string(), "initialized");
        assert_eq!(EnclaveState::Destroyed.to_string(), "destroyed");
    }
}

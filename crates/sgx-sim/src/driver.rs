//! The paper's modified Intel SGX Linux driver (§V-E), simulated.
//!
//! The paper adds ~115 lines of C to the Intel `isgx` driver to support the
//! orchestrator. This module reproduces the resulting kernel interface:
//!
//! * **Module parameters** readable under
//!   `/sys/module/isgx/parameters/`: `sgx_nr_total_epc_pages` and
//!   `sgx_nr_free_pages` — see [`SgxDriver::read_module_param`].
//! * **Per-process usage ioctl**: the number of EPC pages currently given
//!   to a process — [`IoctlRequest::ProcessEpcPages`].
//! * **Limit ioctl**: a *(cgroup path, EPC page limit)* pair communicated
//!   by Kubelet at pod-creation time; settable **once** per pod so
//!   containers cannot reset their own limits —
//!   [`IoctlRequest::SetPodLimit`].
//! * **Admission check in `__sgx_encl_init`**: initialisation of an
//!   enclave is denied when the pages owned by its pod's enclaves exceed
//!   the pod's advertised limit — [`SgxDriver::init_enclave`].

use std::collections::HashMap;

use crate::attestation::{Aesm, LaunchToken, Measurement, Signer};
use crate::enclave::{Enclave, EnclaveState};
use crate::epc::{EnclaveUsage, Epc, EpcConfig, PagingActivity};
use crate::error::SgxError;
use crate::ids::{CgroupPath, EnclaveId, Pid};
use crate::units::EpcPages;
use crate::SgxVersion;

/// Requests accepted by the driver's `ioctl` entry point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoctlRequest {
    /// Report the number of EPC pages currently owned by a process.
    ProcessEpcPages(Pid),
    /// Advertise the EPC-page limit for a pod; accepted only once per pod.
    SetPodLimit {
        /// Pod identifier (its cgroup path).
        pod: CgroupPath,
        /// Maximum pages the pod's enclaves may own together.
        limit: EpcPages,
    },
}

/// Replies from the driver's `ioctl` entry point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoctlResponse {
    /// Page count answering [`IoctlRequest::ProcessEpcPages`].
    PageCount(EpcPages),
    /// Acknowledgement of [`IoctlRequest::SetPodLimit`].
    LimitSet,
}

/// The simulated modified `isgx` kernel driver for one machine.
///
/// # Examples
///
/// Strict limit enforcement (§V-D): a pod that under-declares its EPC usage
/// is denied at enclave initialisation.
///
/// ```
/// use sgx_sim::driver::SgxDriver;
/// use sgx_sim::units::EpcPages;
/// use sgx_sim::{CgroupPath, Pid, SgxError};
///
/// let mut driver = SgxDriver::sgx1_default();
/// let pod = CgroupPath::new("/kubepods/malicious");
/// driver.set_pod_limit(&pod, EpcPages::ONE)?;
///
/// let enclave = driver.create_enclave(Pid::new(1), pod.clone());
/// driver.add_pages(enclave, EpcPages::from_mib_ceil(46))?; // ~50 % of EPC
/// let denied = driver.init_enclave(enclave);
/// assert!(matches!(denied, Err(SgxError::PodLimitExceeded { .. })));
/// # Ok::<(), sgx_sim::SgxError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SgxDriver {
    version: SgxVersion,
    epc: Epc,
    enclaves: HashMap<EnclaveId, Enclave>,
    pod_limits: HashMap<CgroupPath, EpcPages>,
    enforce_limits: bool,
    denied_inits: u64,
    aesm: Aesm,
}

impl SgxDriver {
    /// Creates a driver for the given SGX generation and EPC configuration
    /// (platform identifier 0; see [`with_platform`](Self::with_platform)).
    pub fn new(version: SgxVersion, config: EpcConfig) -> Self {
        SgxDriver {
            version,
            epc: Epc::new(config),
            enclaves: HashMap::new(),
            pod_limits: HashMap::new(),
            enforce_limits: true,
            denied_inits: 0,
            aesm: Aesm::new(0),
        }
    }

    /// Assigns the machine's platform identity, which anchors launch
    /// tokens, quotes and seal keys to this CPU.
    pub fn with_platform(mut self, platform: u64) -> Self {
        self.aesm = Aesm::new(platform);
        self
    }

    /// The platform's AESM (gateway to the LE/QE/PE architectural
    /// enclaves).
    pub fn aesm(&self) -> &Aesm {
        &self.aesm
    }

    /// SGX1 driver on the paper's hardware (128 MiB PRM / 93.5 MiB usable).
    pub fn sgx1_default() -> Self {
        SgxDriver::new(SgxVersion::Sgx1, EpcConfig::sgx1_default())
    }

    /// SGX2 driver on the same EPC configuration, with EDMM available.
    pub fn sgx2_default() -> Self {
        SgxDriver::new(SgxVersion::Sgx2, EpcConfig::sgx1_default())
    }

    /// The simulated hardware generation.
    pub fn version(&self) -> SgxVersion {
        self.version
    }

    /// Read-only view of the EPC accounting.
    pub fn epc(&self) -> &Epc {
        &self.epc
    }

    /// Enables or disables strict limit enforcement; the Fig. 11
    /// experiment compares both settings.
    pub fn set_enforce_limits(&mut self, enforce: bool) {
        self.enforce_limits = enforce;
    }

    /// Whether strict limit enforcement is active.
    pub fn enforces_limits(&self) -> bool {
        self.enforce_limits
    }

    /// Number of enclave initialisations the admission check has denied.
    pub fn denied_inits(&self) -> u64 {
        self.denied_inits
    }

    // ---- module parameters (sysfs interface) -------------------------

    /// Total usable EPC pages (`sgx_nr_total_epc_pages`).
    pub fn sgx_nr_total_epc_pages(&self) -> EpcPages {
        self.epc.total_pages()
    }

    /// EPC pages not allocated to any enclave (`sgx_nr_free_pages`).
    pub fn sgx_nr_free_pages(&self) -> EpcPages {
        self.epc.free_pages()
    }

    /// Reads a module parameter by its sysfs name, mirroring
    /// `/sys/module/isgx/parameters/<name>`. Returns `None` for unknown
    /// parameters.
    pub fn read_module_param(&self, name: &str) -> Option<u64> {
        match name {
            "sgx_nr_total_epc_pages" => Some(self.sgx_nr_total_epc_pages().count()),
            "sgx_nr_free_pages" => Some(self.sgx_nr_free_pages().count()),
            _ => None,
        }
    }

    // ---- ioctl interface ---------------------------------------------

    /// The driver's `ioctl` entry point.
    ///
    /// # Errors
    ///
    /// * [`SgxError::UnknownProcess`] — no enclave belongs to the queried
    ///   process.
    /// * [`SgxError::LimitAlreadySet`] — a second `SetPodLimit` for the
    ///   same pod.
    pub fn ioctl(&mut self, request: IoctlRequest) -> Result<IoctlResponse, SgxError> {
        match request {
            IoctlRequest::ProcessEpcPages(pid) => {
                self.pages_for_process(pid).map(IoctlResponse::PageCount)
            }
            IoctlRequest::SetPodLimit { pod, limit } => {
                self.set_pod_limit(&pod, limit)?;
                Ok(IoctlResponse::LimitSet)
            }
        }
    }

    /// Records the EPC-page limit for a pod. Limits are set exactly once:
    /// Kubelet issues this at pod creation, before any container starts, so
    /// the containers themselves can never change it.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::LimitAlreadySet`] if the pod already has a limit.
    pub fn set_pod_limit(&mut self, pod: &CgroupPath, limit: EpcPages) -> Result<(), SgxError> {
        if self.pod_limits.contains_key(pod) {
            return Err(SgxError::LimitAlreadySet { pod: pod.clone() });
        }
        self.pod_limits.insert(pod.clone(), limit);
        Ok(())
    }

    /// The limit recorded for a pod, if any.
    pub fn pod_limit(&self, pod: &CgroupPath) -> Option<EpcPages> {
        self.pod_limits.get(pod).copied()
    }

    /// Forgets a pod's limit and bookkeeping. Models pod deletion: the
    /// cgroup path disappears with the pod, so a future pod reusing the
    /// path is a distinct pod.
    ///
    /// Any enclaves still registered to the pod are destroyed first.
    pub fn remove_pod(&mut self, pod: &CgroupPath) {
        let stale: Vec<EnclaveId> = self
            .enclaves
            .values()
            .filter(|e| e.pod() == pod)
            .map(Enclave::id)
            .collect();
        for id in stale {
            let _ = self.destroy_enclave(id);
        }
        self.pod_limits.remove(pod);
    }

    // ---- enclave lifecycle --------------------------------------------

    /// `ECREATE`: registers a new enclave owned by `pid` inside `pod`.
    pub fn create_enclave(&mut self, pid: Pid, pod: CgroupPath) -> EnclaveId {
        let id = self.epc.register_enclave();
        self.enclaves
            .insert(id, Enclave::new(id, pid, pod, self.version));
        id
    }

    /// `EADD`: commits pages to a not-yet-initialised enclave.
    ///
    /// # Errors
    ///
    /// * [`SgxError::UnknownEnclave`] — no such enclave.
    /// * [`SgxError::InvalidState`] — the enclave is already initialised
    ///   (use [`augment_pages`](Self::augment_pages) on SGX2) or destroyed.
    /// * EPC capacity errors from [`Epc::commit`].
    pub fn add_pages(
        &mut self,
        id: EnclaveId,
        pages: EpcPages,
    ) -> Result<PagingActivity, SgxError> {
        let enclave = self.enclaves.get(&id).ok_or(SgxError::UnknownEnclave(id))?;
        if enclave.state() != EnclaveState::Created {
            return Err(SgxError::InvalidState {
                enclave: id,
                reason: "EADD is only valid before EINIT",
            });
        }
        let activity = self.epc.commit(id, pages)?;
        self.enclaves
            .get_mut(&id)
            .expect("checked above")
            .add_committed(pages);
        Ok(activity)
    }

    /// `EINIT` with the paper's admission check: when enforcement is on,
    /// the pages owned by all enclaves of the enclosing pod (including this
    /// one) must not exceed the pod's advertised limit.
    ///
    /// # Errors
    ///
    /// * [`SgxError::UnknownEnclave`] — no such enclave.
    /// * [`SgxError::InvalidState`] — not in the `Created` state.
    /// * [`SgxError::NoPodLimit`] — enforcement is on and the pod never
    ///   advertised a limit.
    /// * [`SgxError::PodLimitExceeded`] — the admission check failed; the
    ///   enclave stays un-initialised and should be destroyed by its owner.
    pub fn init_enclave(&mut self, id: EnclaveId) -> Result<(), SgxError> {
        let enclave = self.enclaves.get(&id).ok_or(SgxError::UnknownEnclave(id))?;
        if enclave.state() != EnclaveState::Created {
            return Err(SgxError::InvalidState {
                enclave: id,
                reason: "EINIT is only valid in the created state",
            });
        }
        if self.enforce_limits {
            let pod = enclave.pod().clone();
            let Some(limit) = self.pod_limit(&pod) else {
                self.denied_inits += 1;
                return Err(SgxError::NoPodLimit { pod });
            };
            let owned = self.pages_for_pod(&pod);
            if owned > limit {
                self.denied_inits += 1;
                return Err(SgxError::PodLimitExceeded { pod, owned, limit });
            }
        }
        self.enclaves
            .get_mut(&id)
            .expect("checked above")
            .set_state(EnclaveState::Initialized);
        Ok(())
    }

    /// Measures a not-yet-initialised enclave: the MRENCLAVE a verifier
    /// would compute from its committed pages and code identity.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::UnknownEnclave`] for unknown enclaves.
    pub fn measure_enclave(
        &self,
        id: EnclaveId,
        code_identity: &str,
    ) -> Result<Measurement, SgxError> {
        let enclave = self.enclaves.get(&id).ok_or(SgxError::UnknownEnclave(id))?;
        Ok(Measurement::compute(code_identity, enclave.committed()))
    }

    /// The full Fig. 1 launch flow: verifies the launch token against the
    /// enclave's measurement, signer and this platform, then runs the
    /// ordinary `EINIT` admission path (including the paper's pod-limit
    /// check).
    ///
    /// # Errors
    ///
    /// * [`SgxError::AttestationFailed`] — the token does not authorise
    ///   this enclave on this platform.
    /// * Everything [`init_enclave`](Self::init_enclave) returns.
    pub fn init_enclave_with_token(
        &mut self,
        id: EnclaveId,
        code_identity: &str,
        signer: &Signer,
        token: &LaunchToken,
    ) -> Result<(), SgxError> {
        let measurement = self.measure_enclave(id, code_identity)?;
        if !token.authorises(measurement, signer, self.aesm.platform()) {
            return Err(SgxError::AttestationFailed {
                reason: "launch token does not match enclave identity or platform",
            });
        }
        self.init_enclave(id)
    }

    /// `EAUG` (SGX2 EDMM): commits additional pages to a running enclave.
    /// The same pod-limit check as at initialisation applies.
    ///
    /// # Errors
    ///
    /// * [`SgxError::DynamicMemoryUnsupported`] — SGX1 hardware.
    /// * [`SgxError::UnknownEnclave`] / [`SgxError::InvalidState`] — wrong
    ///   target or lifecycle state.
    /// * [`SgxError::PodLimitExceeded`] — enforcement denies the growth.
    /// * EPC capacity errors from [`Epc::commit`].
    pub fn augment_pages(
        &mut self,
        id: EnclaveId,
        pages: EpcPages,
    ) -> Result<PagingActivity, SgxError> {
        if !self.version.supports_dynamic_memory() {
            return Err(SgxError::DynamicMemoryUnsupported);
        }
        let enclave = self.enclaves.get(&id).ok_or(SgxError::UnknownEnclave(id))?;
        if enclave.state() != EnclaveState::Initialized {
            return Err(SgxError::InvalidState {
                enclave: id,
                reason: "EAUG is only valid on an initialized enclave",
            });
        }
        if self.enforce_limits {
            let pod = enclave.pod().clone();
            let limit = self
                .pod_limit(&pod)
                .ok_or(SgxError::NoPodLimit { pod: pod.clone() })?;
            let owned = self.pages_for_pod(&pod) + pages;
            if owned > limit {
                return Err(SgxError::PodLimitExceeded { pod, owned, limit });
            }
        }
        let activity = self.epc.commit(id, pages)?;
        self.enclaves
            .get_mut(&id)
            .expect("checked above")
            .add_committed(pages);
        Ok(activity)
    }

    /// SGX2 trim: releases pages from a running enclave back to the EPC.
    ///
    /// # Errors
    ///
    /// * [`SgxError::DynamicMemoryUnsupported`] — SGX1 hardware.
    /// * [`SgxError::UnknownEnclave`] / [`SgxError::InvalidState`] — wrong
    ///   target, lifecycle state, or more pages than committed.
    pub fn trim_pages(&mut self, id: EnclaveId, pages: EpcPages) -> Result<(), SgxError> {
        if !self.version.supports_dynamic_memory() {
            return Err(SgxError::DynamicMemoryUnsupported);
        }
        let enclave = self.enclaves.get(&id).ok_or(SgxError::UnknownEnclave(id))?;
        if enclave.state() != EnclaveState::Initialized {
            return Err(SgxError::InvalidState {
                enclave: id,
                reason: "trim is only valid on an initialized enclave",
            });
        }
        self.epc.release(id, pages)?;
        self.enclaves
            .get_mut(&id)
            .expect("checked above")
            .sub_committed(pages);
        Ok(())
    }

    /// Performs an `ecall` into an initialised enclave, touching `working_set`
    /// pages (faulting them in when paged out).
    ///
    /// # Errors
    ///
    /// * [`SgxError::UnknownEnclave`] / [`SgxError::InvalidState`] — wrong
    ///   target or lifecycle state, or working set beyond committed pages.
    pub fn ecall(
        &mut self,
        id: EnclaveId,
        working_set: EpcPages,
    ) -> Result<PagingActivity, SgxError> {
        let enclave = self.enclaves.get(&id).ok_or(SgxError::UnknownEnclave(id))?;
        if enclave.state() != EnclaveState::Initialized {
            return Err(SgxError::InvalidState {
                enclave: id,
                reason: "ecall requires an initialized enclave",
            });
        }
        let activity = self.epc.touch(id, working_set)?;
        self.enclaves
            .get_mut(&id)
            .expect("checked above")
            .record_ecall();
        Ok(activity)
    }

    /// Checkpoints a running enclave for migration (§VIII / Gu et al.):
    /// reaches the quiescent point, encrypts the state under `key`, and
    /// **destroys the source enclave** so the state can never run twice
    /// (fork protection). Returns the single-use checkpoint.
    ///
    /// # Errors
    ///
    /// * [`SgxError::UnknownEnclave`] — no such enclave.
    /// * [`SgxError::InvalidState`] — the enclave is not initialised (only
    ///   running enclaves are migrated).
    pub fn checkpoint_enclave(
        &mut self,
        id: EnclaveId,
        code_identity: &str,
        key: crate::migration::MigrationKey,
    ) -> Result<crate::migration::EnclaveCheckpoint, SgxError> {
        let enclave = self.enclaves.get(&id).ok_or(SgxError::UnknownEnclave(id))?;
        if enclave.state() != EnclaveState::Initialized {
            return Err(SgxError::InvalidState {
                enclave: id,
                reason: "only an initialized enclave can be checkpointed",
            });
        }
        let checkpoint = crate::migration::EnclaveCheckpoint {
            measurement: Measurement::compute(code_identity, enclave.committed()),
            committed: enclave.committed(),
            ecalls: enclave.ecalls(),
            key_tag: crate::migration::EnclaveCheckpoint::tag_for(key),
            source_platform: self.aesm.platform(),
        };
        // Self-destroy: after the snapshot the source must never resume.
        self.destroy_enclave(id)?;
        Ok(checkpoint)
    }

    /// Restores a checkpointed enclave on this platform. On success the
    /// checkpoint is consumed (each snapshot runs at most once — rollback
    /// protection); on failure it is handed back inside the error so the
    /// caller may restore it elsewhere. The restored enclave passes the
    /// normal `EINIT` admission path, including the pod-limit check, and
    /// resumes initialised.
    ///
    /// # Errors
    ///
    /// Returns a [`RestoreError`] wrapping
    /// [`SgxError::AttestationFailed`] (wrong migration key) or any EPC
    /// capacity / pod-limit admission error of the ordinary launch path.
    ///
    /// [`RestoreError`]: crate::migration::RestoreError
    pub fn restore_enclave(
        &mut self,
        pid: Pid,
        pod: CgroupPath,
        checkpoint: crate::migration::EnclaveCheckpoint,
        key: crate::migration::MigrationKey,
    ) -> Result<EnclaveId, crate::migration::RestoreError> {
        if !checkpoint.opens_with(key) {
            return Err(crate::migration::RestoreError {
                error: SgxError::AttestationFailed {
                    reason: "migration key does not open this checkpoint",
                },
                checkpoint,
            });
        }
        let id = self.create_enclave(pid, pod);
        let restore = (|this: &mut Self| {
            this.add_pages(id, checkpoint.committed)?;
            this.init_enclave(id)
        })(self);
        if let Err(error) = restore {
            // Leave no half-restored enclave behind; the snapshot stays
            // valid for one restore attempt elsewhere.
            let _ = self.destroy_enclave(id);
            return Err(crate::migration::RestoreError { error, checkpoint });
        }
        self.enclaves
            .get_mut(&id)
            .expect("just created")
            .set_ecalls(checkpoint.ecalls);
        Ok(id)
    }

    /// Destroys an enclave, releasing all its EPC pages.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::UnknownEnclave`] if the enclave is not
    /// registered (or already destroyed).
    pub fn destroy_enclave(&mut self, id: EnclaveId) -> Result<EnclaveUsage, SgxError> {
        self.enclaves
            .remove(&id)
            .ok_or(SgxError::UnknownEnclave(id))?;
        self.epc.deregister_enclave(id)
    }

    // ---- queries -------------------------------------------------------

    /// Bookkeeping record of an enclave, or `None` when unknown.
    pub fn enclave(&self, id: EnclaveId) -> Option<&Enclave> {
        self.enclaves.get(&id)
    }

    /// Pages owned by all enclaves of a process (the per-process ioctl).
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::UnknownProcess`] when the process owns no
    /// enclave, mirroring the `-EINVAL` a real ioctl would produce.
    pub fn pages_for_process(&self, pid: Pid) -> Result<EpcPages, SgxError> {
        let mut any = false;
        let mut total = EpcPages::ZERO;
        for enclave in self.enclaves.values() {
            if enclave.owner() == pid {
                any = true;
                total += enclave.committed();
            }
        }
        if any {
            Ok(total)
        } else {
            Err(SgxError::UnknownProcess(pid))
        }
    }

    /// Pages owned by all enclaves of a pod (zero when the pod has none).
    pub fn pages_for_pod(&self, pod: &CgroupPath) -> EpcPages {
        self.enclaves
            .values()
            .filter(|e| e.pod() == pod)
            .map(Enclave::committed)
            .sum()
    }

    /// Per-pod page usage for every pod with at least one enclave —
    /// exactly what the SGX metrics probe (§V-C) scrapes on each tick.
    pub fn usage_by_pod(&self) -> HashMap<CgroupPath, EpcPages> {
        let mut map: HashMap<CgroupPath, EpcPages> = HashMap::new();
        for enclave in self.enclaves.values() {
            *map.entry(enclave.pod().clone()).or_default() += enclave.committed();
        }
        map
    }

    /// Committed ÷ usable ratio; above 1.0 the machine is paging.
    pub fn overcommit_ratio(&self) -> f64 {
        self.epc.overcommit_ratio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::ByteSize;

    fn pod(n: u32) -> CgroupPath {
        CgroupPath::new(format!("/kubepods/pod-{n}"))
    }

    fn driver_with_limit(pod_id: u32, limit_pages: u64) -> SgxDriver {
        let mut d = SgxDriver::sgx1_default();
        d.set_pod_limit(&pod(pod_id), EpcPages::new(limit_pages))
            .unwrap();
        d
    }

    #[test]
    fn module_params_reflect_epc_state() {
        let mut d = driver_with_limit(1, 10_000);
        assert_eq!(d.read_module_param("sgx_nr_total_epc_pages"), Some(23_936));
        assert_eq!(d.read_module_param("sgx_nr_free_pages"), Some(23_936));
        assert_eq!(d.read_module_param("bogus"), None);

        let e = d.create_enclave(Pid::new(1), pod(1));
        d.add_pages(e, EpcPages::new(1000)).unwrap();
        assert_eq!(d.read_module_param("sgx_nr_free_pages"), Some(22_936));
    }

    #[test]
    fn lifecycle_happy_path() {
        let mut d = driver_with_limit(1, 5000);
        let e = d.create_enclave(Pid::new(1), pod(1));
        d.add_pages(e, EpcPages::new(4000)).unwrap();
        d.init_enclave(e).unwrap();
        assert_eq!(d.enclave(e).unwrap().state(), EnclaveState::Initialized);
        d.ecall(e, EpcPages::new(4000)).unwrap();
        assert_eq!(d.enclave(e).unwrap().ecalls(), 1);
        let usage = d.destroy_enclave(e).unwrap();
        assert_eq!(usage.committed, EpcPages::new(4000));
        assert_eq!(d.sgx_nr_free_pages().count(), 23_936);
    }

    #[test]
    fn init_denied_when_pod_exceeds_limit() {
        let mut d = driver_with_limit(1, 100);
        let e = d.create_enclave(Pid::new(1), pod(1));
        d.add_pages(e, EpcPages::new(200)).unwrap();
        let err = d.init_enclave(e).unwrap_err();
        assert!(matches!(err, SgxError::PodLimitExceeded { .. }));
        assert_eq!(d.denied_inits(), 1);
    }

    #[test]
    fn limit_counts_all_enclaves_of_the_pod() {
        let mut d = driver_with_limit(1, 100);
        let first = d.create_enclave(Pid::new(1), pod(1));
        d.add_pages(first, EpcPages::new(80)).unwrap();
        d.init_enclave(first).unwrap();
        // A second enclave in the same pod pushes the pod over its limit.
        let second = d.create_enclave(Pid::new(2), pod(1));
        d.add_pages(second, EpcPages::new(30)).unwrap();
        assert!(matches!(
            d.init_enclave(second),
            Err(SgxError::PodLimitExceeded { .. })
        ));
    }

    #[test]
    fn init_without_limit_denied_when_enforcing() {
        let mut d = SgxDriver::sgx1_default();
        let e = d.create_enclave(Pid::new(1), pod(9));
        d.add_pages(e, EpcPages::ONE).unwrap();
        assert!(matches!(
            d.init_enclave(e),
            Err(SgxError::NoPodLimit { .. })
        ));
    }

    #[test]
    fn enforcement_can_be_disabled() {
        let mut d = SgxDriver::sgx1_default();
        d.set_enforce_limits(false);
        assert!(!d.enforces_limits());
        let e = d.create_enclave(Pid::new(1), pod(9));
        d.add_pages(e, EpcPages::from_mib_ceil(46)).unwrap();
        d.init_enclave(e).unwrap(); // no limit, no problem: Fig. 11's broken world
    }

    #[test]
    fn limits_are_set_once() {
        let mut d = SgxDriver::sgx1_default();
        d.set_pod_limit(&pod(1), EpcPages::new(10)).unwrap();
        let err = d.set_pod_limit(&pod(1), EpcPages::new(999)).unwrap_err();
        assert!(matches!(err, SgxError::LimitAlreadySet { .. }));
        assert_eq!(d.pod_limit(&pod(1)), Some(EpcPages::new(10)));
    }

    #[test]
    fn ioctl_interface_round_trips() {
        let mut d = SgxDriver::sgx1_default();
        let reply = d
            .ioctl(IoctlRequest::SetPodLimit {
                pod: pod(1),
                limit: EpcPages::new(500),
            })
            .unwrap();
        assert_eq!(reply, IoctlResponse::LimitSet);

        let e = d.create_enclave(Pid::new(7), pod(1));
        d.add_pages(e, EpcPages::new(123)).unwrap();
        let reply = d.ioctl(IoctlRequest::ProcessEpcPages(Pid::new(7))).unwrap();
        assert_eq!(reply, IoctlResponse::PageCount(EpcPages::new(123)));

        let err = d
            .ioctl(IoctlRequest::ProcessEpcPages(Pid::new(8)))
            .unwrap_err();
        assert!(matches!(err, SgxError::UnknownProcess(_)));
    }

    #[test]
    fn eadd_after_einit_rejected() {
        let mut d = driver_with_limit(1, 1000);
        let e = d.create_enclave(Pid::new(1), pod(1));
        d.add_pages(e, EpcPages::new(10)).unwrap();
        d.init_enclave(e).unwrap();
        assert!(matches!(
            d.add_pages(e, EpcPages::new(10)),
            Err(SgxError::InvalidState { .. })
        ));
    }

    #[test]
    fn sgx1_rejects_dynamic_memory() {
        let mut d = driver_with_limit(1, 1000);
        let e = d.create_enclave(Pid::new(1), pod(1));
        d.add_pages(e, EpcPages::new(10)).unwrap();
        d.init_enclave(e).unwrap();
        assert_eq!(
            d.augment_pages(e, EpcPages::new(10)).unwrap_err(),
            SgxError::DynamicMemoryUnsupported
        );
        assert_eq!(
            d.trim_pages(e, EpcPages::new(5)).unwrap_err(),
            SgxError::DynamicMemoryUnsupported
        );
    }

    #[test]
    fn sgx2_supports_edmm_within_limits() {
        let mut d = SgxDriver::sgx2_default();
        d.set_pod_limit(&pod(1), EpcPages::new(100)).unwrap();
        let e = d.create_enclave(Pid::new(1), pod(1));
        d.add_pages(e, EpcPages::new(40)).unwrap();
        d.init_enclave(e).unwrap();
        d.augment_pages(e, EpcPages::new(50)).unwrap();
        assert_eq!(d.pages_for_pod(&pod(1)), EpcPages::new(90));
        // Growing past the pod limit is denied.
        assert!(matches!(
            d.augment_pages(e, EpcPages::new(20)),
            Err(SgxError::PodLimitExceeded { .. })
        ));
        // Trimming gives pages back.
        d.trim_pages(e, EpcPages::new(30)).unwrap();
        assert_eq!(d.pages_for_pod(&pod(1)), EpcPages::new(60));
        assert_eq!(d.sgx_nr_free_pages().count(), 23_936 - 60);
    }

    #[test]
    fn ecall_requires_initialized_state() {
        let mut d = driver_with_limit(1, 100);
        let e = d.create_enclave(Pid::new(1), pod(1));
        d.add_pages(e, EpcPages::new(10)).unwrap();
        assert!(matches!(
            d.ecall(e, EpcPages::new(10)),
            Err(SgxError::InvalidState { .. })
        ));
    }

    #[test]
    fn usage_by_pod_aggregates_enclaves() {
        let mut d = SgxDriver::sgx1_default();
        d.set_enforce_limits(false);
        let a1 = d.create_enclave(Pid::new(1), pod(1));
        let a2 = d.create_enclave(Pid::new(2), pod(1));
        let b = d.create_enclave(Pid::new(3), pod(2));
        d.add_pages(a1, EpcPages::new(10)).unwrap();
        d.add_pages(a2, EpcPages::new(20)).unwrap();
        d.add_pages(b, EpcPages::new(5)).unwrap();
        let usage = d.usage_by_pod();
        assert_eq!(usage[&pod(1)], EpcPages::new(30));
        assert_eq!(usage[&pod(2)], EpcPages::new(5));
    }

    #[test]
    fn remove_pod_destroys_enclaves_and_frees_limit() {
        let mut d = driver_with_limit(1, 1000);
        let e = d.create_enclave(Pid::new(1), pod(1));
        d.add_pages(e, EpcPages::new(100)).unwrap();
        d.remove_pod(&pod(1));
        assert_eq!(d.pod_limit(&pod(1)), None);
        assert!(d.enclave(e).is_none());
        assert_eq!(d.sgx_nr_free_pages().count(), 23_936);
        // The path can now be reused by a new pod with a fresh limit.
        d.set_pod_limit(&pod(1), EpcPages::new(5)).unwrap();
    }

    #[test]
    fn token_gated_launch_flow() {
        use crate::attestation::Signer;

        let mut d = SgxDriver::sgx1_default().with_platform(7);
        d.set_pod_limit(&pod(1), EpcPages::new(1000)).unwrap();
        let signer = Signer::new("acme");
        let e = d.create_enclave(Pid::new(1), pod(1));
        d.add_pages(e, EpcPages::new(512)).unwrap();

        // A token for the right identity on the right platform launches.
        let mrenclave = d.measure_enclave(e, "kv-store-v1").unwrap();
        let token = d.aesm().launch_token(mrenclave, &signer);
        d.init_enclave_with_token(e, "kv-store-v1", &signer, &token)
            .unwrap();

        // A token minted on another platform is rejected before EINIT.
        let e2 = d.create_enclave(Pid::new(2), pod(1));
        d.add_pages(e2, EpcPages::new(100)).unwrap();
        let m2 = d.measure_enclave(e2, "kv-store-v1").unwrap();
        let foreign = crate::attestation::Aesm::new(8).launch_token(m2, &signer);
        assert!(matches!(
            d.init_enclave_with_token(e2, "kv-store-v1", &signer, &foreign),
            Err(SgxError::AttestationFailed { .. })
        ));

        // …and so is a token for different code.
        let other = d
            .aesm()
            .launch_token(d.measure_enclave(e2, "trojan").unwrap(), &signer);
        assert!(matches!(
            d.init_enclave_with_token(e2, "kv-store-v1", &signer, &other),
            Err(SgxError::AttestationFailed { .. })
        ));
    }

    #[test]
    fn checkpoint_migrates_state_and_prevents_forks() {
        use crate::migration::MigrationKey;

        let mut source = SgxDriver::sgx1_default().with_platform(1);
        let mut target = SgxDriver::sgx1_default().with_platform(2);
        source.set_pod_limit(&pod(1), EpcPages::new(1000)).unwrap();
        target.set_pod_limit(&pod(1), EpcPages::new(1000)).unwrap();

        let e = source.create_enclave(Pid::new(1), pod(1));
        source.add_pages(e, EpcPages::new(500)).unwrap();
        source.init_enclave(e).unwrap();
        source.ecall(e, EpcPages::new(500)).unwrap();

        let key = MigrationKey::derive(1, 2, 42);
        let checkpoint = source.checkpoint_enclave(e, "svc-v1", key).unwrap();
        // Fork protection: the source enclave is gone, its pages freed.
        assert!(source.enclave(e).is_none());
        assert_eq!(source.sgx_nr_free_pages().count(), 23_936);

        let restored = target
            .restore_enclave(Pid::new(9), pod(1), checkpoint, key)
            .unwrap();
        let enclave = target.enclave(restored).unwrap();
        assert_eq!(enclave.state(), EnclaveState::Initialized);
        assert_eq!(enclave.committed(), EpcPages::new(500));
        assert_eq!(enclave.ecalls(), 1);
        // Rollback protection is structural: the checkpoint was consumed
        // by value, so it cannot be restored a second time.
    }

    #[test]
    fn restore_requires_the_attested_migration_key() {
        use crate::migration::MigrationKey;

        let mut source = SgxDriver::sgx1_default().with_platform(1);
        let mut target = SgxDriver::sgx1_default().with_platform(2);
        source.set_pod_limit(&pod(1), EpcPages::new(100)).unwrap();
        target.set_pod_limit(&pod(1), EpcPages::new(100)).unwrap();
        let e = source.create_enclave(Pid::new(1), pod(1));
        source.add_pages(e, EpcPages::new(10)).unwrap();
        source.init_enclave(e).unwrap();

        let key = MigrationKey::derive(1, 2, 7);
        let checkpoint = source.checkpoint_enclave(e, "svc", key).unwrap();
        let wrong = MigrationKey::derive(1, 2, 8);
        let err = target
            .restore_enclave(Pid::new(1), pod(1), checkpoint, wrong)
            .unwrap_err();
        assert!(matches!(err.error, SgxError::AttestationFailed { .. }));
        // The checkpoint came back and still opens with the right key.
        assert!(err.checkpoint.opens_with(key));
    }

    #[test]
    fn restore_respects_target_pod_limits() {
        use crate::migration::MigrationKey;

        let mut source = SgxDriver::sgx1_default().with_platform(1);
        let mut target = SgxDriver::sgx1_default().with_platform(2);
        source.set_pod_limit(&pod(1), EpcPages::new(1000)).unwrap();
        target.set_pod_limit(&pod(1), EpcPages::new(100)).unwrap(); // tighter

        let e = source.create_enclave(Pid::new(1), pod(1));
        source.add_pages(e, EpcPages::new(500)).unwrap();
        source.init_enclave(e).unwrap();

        let key = MigrationKey::derive(1, 2, 7);
        let checkpoint = source.checkpoint_enclave(e, "svc", key).unwrap();
        let err = target
            .restore_enclave(Pid::new(1), pod(1), checkpoint, key)
            .unwrap_err();
        assert!(matches!(err.error, SgxError::PodLimitExceeded { .. }));
        // The failed restore leaves no residue on the target.
        assert_eq!(target.sgx_nr_free_pages().count(), 23_936);
        assert_eq!(target.pages_for_pod(&pod(1)), EpcPages::ZERO);
    }

    #[test]
    fn only_running_enclaves_can_be_checkpointed() {
        use crate::migration::MigrationKey;

        let mut d = SgxDriver::sgx1_default().with_platform(1);
        d.set_pod_limit(&pod(1), EpcPages::new(100)).unwrap();
        let e = d.create_enclave(Pid::new(1), pod(1));
        d.add_pages(e, EpcPages::new(10)).unwrap();
        let key = MigrationKey::derive(1, 2, 7);
        assert!(matches!(
            d.checkpoint_enclave(e, "svc", key),
            Err(SgxError::InvalidState { .. })
        ));
    }

    #[test]
    fn overcommit_ratio_visible_through_driver() {
        let mut d = SgxDriver::sgx1_default();
        d.set_enforce_limits(false);
        let e = d.create_enclave(Pid::new(1), pod(1));
        d.add_pages(e, ByteSize::from_mib(100).to_epc_pages_ceil())
            .unwrap();
        assert!(d.overcommit_ratio() > 1.0);
    }
}

//! Error type for the SGX substrate.

use std::error::Error;
use std::fmt;

use crate::ids::{CgroupPath, EnclaveId, Pid};
use crate::units::EpcPages;

/// Errors returned by the simulated SGX driver and EPC allocator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SgxError {
    /// The enclave (or another enclave of the same pod) would exceed the
    /// EPC-page limit advertised by its enclosing pod; the modified driver
    /// denies initialisation (§V-D).
    PodLimitExceeded {
        /// The pod whose limit was hit.
        pod: CgroupPath,
        /// Pages the pod's enclaves own, counting the one being initialised.
        owned: EpcPages,
        /// The advertised limit.
        limit: EpcPages,
    },
    /// A pod attempted to initialise an enclave without having advertised
    /// any EPC limit; with strict enforcement active the driver refuses.
    NoPodLimit {
        /// The offending pod.
        pod: CgroupPath,
    },
    /// Limits can only be set once per pod, preventing containers from
    /// resetting their own limit (§V-E).
    LimitAlreadySet {
        /// The pod whose limit was already recorded.
        pod: CgroupPath,
    },
    /// The EPC has no free pages and paging is disabled.
    EpcExhausted {
        /// Pages requested.
        requested: EpcPages,
        /// Pages currently free.
        free: EpcPages,
    },
    /// The requested allocation exceeds even the total usable EPC plus the
    /// paging backing store, or the total usable EPC when paging is off.
    EpcOverCapacity {
        /// Pages requested.
        requested: EpcPages,
        /// Usable pages on the machine.
        usable: EpcPages,
    },
    /// No enclave with this identifier is registered.
    UnknownEnclave(EnclaveId),
    /// No enclave belongs to this process.
    UnknownProcess(Pid),
    /// The operation is invalid in the enclave's current lifecycle state
    /// (e.g. `EADD` after `EINIT` on SGX1).
    InvalidState {
        /// The enclave concerned.
        enclave: EnclaveId,
        /// Human-readable description of the violated transition.
        reason: &'static str,
    },
    /// Dynamic memory management was requested on SGX1 hardware.
    DynamicMemoryUnsupported,
    /// An attestation-infrastructure operation failed (invalid launch
    /// token, cross-platform report, seal-key mismatch, …).
    AttestationFailed {
        /// What went wrong.
        reason: &'static str,
    },
}

impl fmt::Display for SgxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SgxError::PodLimitExceeded { pod, owned, limit } => write!(
                f,
                "enclave initialisation denied: pod {pod} owns {owned} exceeding its limit of {limit}"
            ),
            SgxError::NoPodLimit { pod } => {
                write!(f, "pod {pod} has not advertised an EPC limit")
            }
            SgxError::LimitAlreadySet { pod } => {
                write!(f, "EPC limit for pod {pod} was already set and cannot be changed")
            }
            SgxError::EpcExhausted { requested, free } => write!(
                f,
                "EPC exhausted: requested {requested} with only {free} free and paging disabled"
            ),
            SgxError::EpcOverCapacity { requested, usable } => write!(
                f,
                "request of {requested} exceeds the usable EPC of {usable}"
            ),
            SgxError::UnknownEnclave(id) => write!(f, "unknown enclave {id}"),
            SgxError::UnknownProcess(pid) => write!(f, "no enclave registered for {pid}"),
            SgxError::InvalidState { enclave, reason } => {
                write!(f, "invalid operation on {enclave}: {reason}")
            }
            SgxError::DynamicMemoryUnsupported => {
                f.write_str("dynamic EPC allocation requires SGX2 (EDMM)")
            }
            SgxError::AttestationFailed { reason } => {
                write!(f, "attestation failure: {reason}")
            }
        }
    }
}

impl Error for SgxError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_meaningfully() {
        let e = SgxError::PodLimitExceeded {
            pod: CgroupPath::new("/p"),
            owned: EpcPages::new(10),
            limit: EpcPages::new(5),
        };
        assert!(e.to_string().contains("denied"));
        assert!(SgxError::DynamicMemoryUnsupported
            .to_string()
            .contains("SGX2"));
        assert!(SgxError::UnknownEnclave(crate::EnclaveId::new(1))
            .to_string()
            .contains("enclave:1"));
    }

    #[test]
    fn error_is_std_error_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<SgxError>();
    }
}

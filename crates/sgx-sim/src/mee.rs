//! Memory Encryption Engine accounting (§II, Gueron's MEE).
//!
//! Traffic between the CPU package and system memory is protected by the
//! MEE: cache misses into the Processor Reserved Memory are transparently
//! encrypted/decrypted, and an integrity tree provides tamper and replay
//! protection. The simulation cannot (and need not) encrypt anything, but
//! it accounts for the traffic the paging mechanism generates — the
//! quantity behind the up-to-1000× over-commit penalty: every evicted
//! page is encrypted and its digest inserted in the tree; every fault
//! decrypts and verifies.

use serde::{Deserialize, Serialize};

use crate::units::{ByteSize, EpcPages, EPC_PAGE_SIZE};

/// Cumulative MEE counters for one machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MeeStats {
    /// Bytes encrypted on their way out of the PRM (page evictions).
    pub bytes_encrypted: u64,
    /// Bytes decrypted on their way back in (page faults).
    pub bytes_decrypted: u64,
    /// Integrity-tree digest insertions (one per evicted page).
    pub digests_inserted: u64,
    /// Integrity + freshness verifications (one per faulted-in page).
    pub integrity_checks: u64,
}

impl MeeStats {
    /// Records the eviction of `pages` (encrypt + digest).
    pub(crate) fn record_evictions(&mut self, pages: EpcPages) {
        self.bytes_encrypted += pages.count() * EPC_PAGE_SIZE;
        self.digests_inserted += pages.count();
    }

    /// Records `pages` being faulted back in (decrypt + verify).
    pub(crate) fn record_faults(&mut self, pages: EpcPages) {
        self.bytes_decrypted += pages.count() * EPC_PAGE_SIZE;
        self.integrity_checks += pages.count();
    }

    /// Total protected traffic through the MEE, both directions.
    pub fn total_traffic(&self) -> ByteSize {
        ByteSize::from_bytes(self.bytes_encrypted + self.bytes_decrypted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut mee = MeeStats::default();
        mee.record_evictions(EpcPages::new(10));
        mee.record_faults(EpcPages::new(4));
        assert_eq!(mee.bytes_encrypted, 10 * 4096);
        assert_eq!(mee.bytes_decrypted, 4 * 4096);
        assert_eq!(mee.digests_inserted, 10);
        assert_eq!(mee.integrity_checks, 4);
        assert_eq!(mee.total_traffic(), ByteSize::from_bytes(14 * 4096));
    }
}

//! Memory quantities: bytes and EPC pages.
//!
//! Two deliberately distinct newtypes keep regular memory and enclave
//! memory apart in the type system: the scheduler bug class the paper warns
//! about (conflating a pod's standard-memory request with its EPC request)
//! becomes a compile error here.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Size of one EPC page: 4 KiB (§II of the paper).
pub const EPC_PAGE_SIZE: u64 = 4096;

/// Processor Reserved Memory configured on the paper's machines: 128 MiB.
pub const PRM_SIZE: ByteSize = ByteSize::from_mib(128);

/// EPC effectively usable by applications on a 128 MiB PRM: 93.5 MiB,
/// i.e. 23 936 pages; the remainder stores SGX metadata (§II).
pub const USABLE_EPC: ByteSize = ByteSize::from_kib(95_744);

/// Number of usable EPC pages on a 128 MiB PRM machine: 23 936.
pub const USABLE_EPC_PAGES: EpcPages = EpcPages::new(23_936);

/// Ratio of usable EPC to PRM (93.5 / 128), used to derive the usable size
/// for hypothetical PRM configurations in the Fig. 7 sweep.
pub const USABLE_EPC_FRACTION: f64 = 93.5 / 128.0;

/// A quantity of ordinary memory, in bytes.
///
/// # Examples
///
/// ```
/// use sgx_sim::units::ByteSize;
///
/// let total = ByteSize::from_gib(64) + ByteSize::from_mib(512);
/// assert_eq!(total.as_mib_f64(), 66_048.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Creates a quantity of `bytes` bytes.
    pub const fn from_bytes(bytes: u64) -> Self {
        ByteSize(bytes)
    }

    /// Creates a quantity of `kib` kibibytes.
    pub const fn from_kib(kib: u64) -> Self {
        ByteSize(kib * 1024)
    }

    /// Creates a quantity of `mib` mebibytes.
    pub const fn from_mib(mib: u64) -> Self {
        ByteSize(mib * 1024 * 1024)
    }

    /// Creates a quantity of `gib` gibibytes.
    pub const fn from_gib(gib: u64) -> Self {
        ByteSize(gib * 1024 * 1024 * 1024)
    }

    /// Creates a quantity from fractional mebibytes, rounding to the nearest
    /// byte.
    ///
    /// # Panics
    ///
    /// Panics if `mib` is negative or non-finite.
    pub fn from_mib_f64(mib: f64) -> Self {
        assert!(
            mib.is_finite() && mib >= 0.0,
            "ByteSize::from_mib_f64 requires a finite non-negative value, got {mib}"
        );
        ByteSize((mib * 1024.0 * 1024.0).round() as u64)
    }

    /// The quantity in bytes.
    pub const fn as_bytes(self) -> u64 {
        self.0
    }

    /// The quantity in fractional mebibytes.
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// The quantity in fractional gibibytes.
    pub fn as_gib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0 * 1024.0)
    }

    /// `true` when the quantity is zero bytes.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The number of whole EPC pages needed to hold this many bytes
    /// (rounding up).
    pub const fn to_epc_pages_ceil(self) -> EpcPages {
        EpcPages::new(self.0.div_ceil(EPC_PAGE_SIZE))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies by a non-negative factor, rounding to the nearest byte.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite.
    pub fn mul_f64(self, factor: f64) -> ByteSize {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "ByteSize::mul_f64 requires a finite non-negative factor, got {factor}"
        );
        ByteSize((self.0 as f64 * factor).round() as u64)
    }
}

impl Add for ByteSize {
    type Output = ByteSize;

    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;

    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 - rhs.0)
    }
}

impl SubAssign for ByteSize {
    fn sub_assign(&mut self, rhs: ByteSize) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for ByteSize {
    type Output = ByteSize;

    fn mul(self, rhs: u64) -> ByteSize {
        ByteSize(self.0 * rhs)
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        iter.fold(ByteSize::ZERO, Add::add)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= 1024 * 1024 * 1024 && b.is_multiple_of(1024 * 1024) {
            write!(f, "{:.1}GiB", self.as_gib_f64())
        } else if b >= 1024 * 1024 {
            write!(f, "{:.1}MiB", self.as_mib_f64())
        } else if b >= 1024 {
            write!(f, "{:.1}KiB", b as f64 / 1024.0)
        } else {
            write!(f, "{b}B")
        }
    }
}

/// A number of 4 KiB EPC pages.
///
/// The paper's device plugin advertises each EPC page as an independent
/// Kubernetes resource item (§V-A), so pages — not bytes — are the unit in
/// which SGX memory is requested, limited and accounted.
///
/// # Examples
///
/// ```
/// use sgx_sim::units::EpcPages;
///
/// let pages = EpcPages::from_mib_ceil(1);
/// assert_eq!(pages.count(), 256);
/// assert_eq!(pages.to_bytes().as_bytes(), 1024 * 1024);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct EpcPages(u64);

impl EpcPages {
    /// Zero pages.
    pub const ZERO: EpcPages = EpcPages(0);
    /// A single page — the smallest possible request, used by the malicious
    /// pods in the Fig. 11 experiment.
    pub const ONE: EpcPages = EpcPages(1);

    /// Creates a page count.
    pub const fn new(count: u64) -> Self {
        EpcPages(count)
    }

    /// The number of whole pages needed to hold `mib` mebibytes.
    pub const fn from_mib_ceil(mib: u64) -> Self {
        ByteSize::from_mib(mib).to_epc_pages_ceil()
    }

    /// The raw page count.
    pub const fn count(self) -> u64 {
        self.0
    }

    /// The pages expressed as bytes.
    pub const fn to_bytes(self) -> ByteSize {
        ByteSize::from_bytes(self.0 * EPC_PAGE_SIZE)
    }

    /// The pages expressed in fractional mebibytes.
    pub fn as_mib_f64(self) -> f64 {
        self.to_bytes().as_mib_f64()
    }

    /// `true` when the count is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: EpcPages) -> EpcPages {
        EpcPages(self.0.saturating_sub(rhs.0))
    }

    /// The smaller of two page counts.
    pub fn min(self, rhs: EpcPages) -> EpcPages {
        EpcPages(self.0.min(rhs.0))
    }
}

impl Add for EpcPages {
    type Output = EpcPages;

    fn add(self, rhs: EpcPages) -> EpcPages {
        EpcPages(self.0 + rhs.0)
    }
}

impl AddAssign for EpcPages {
    fn add_assign(&mut self, rhs: EpcPages) {
        self.0 += rhs.0;
    }
}

impl Sub for EpcPages {
    type Output = EpcPages;

    fn sub(self, rhs: EpcPages) -> EpcPages {
        EpcPages(self.0 - rhs.0)
    }
}

impl SubAssign for EpcPages {
    fn sub_assign(&mut self, rhs: EpcPages) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for EpcPages {
    type Output = EpcPages;

    fn mul(self, rhs: u64) -> EpcPages {
        EpcPages(self.0 * rhs)
    }
}

impl Sum for EpcPages {
    fn sum<I: Iterator<Item = EpcPages>>(iter: I) -> EpcPages {
        iter.fold(EpcPages::ZERO, Add::add)
    }
}

impl fmt::Display for EpcPages {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} pages", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_line_up() {
        // §II: 93.5 MiB usable, 23 936 pages of 4 KiB.
        assert_eq!(USABLE_EPC.as_mib_f64(), 93.5);
        assert_eq!(USABLE_EPC.to_epc_pages_ceil(), USABLE_EPC_PAGES);
        assert_eq!(USABLE_EPC_PAGES.count(), 23_936);
        assert_eq!(PRM_SIZE.as_mib_f64(), 128.0);
    }

    #[test]
    fn byte_size_conversions() {
        assert_eq!(ByteSize::from_gib(2).as_bytes(), 2 * 1024 * 1024 * 1024);
        assert_eq!(ByteSize::from_mib(1).as_mib_f64(), 1.0);
        assert_eq!(ByteSize::from_mib_f64(1.5).as_bytes(), 3 * 512 * 1024);
        assert_eq!(ByteSize::from_kib(4).to_epc_pages_ceil(), EpcPages::ONE);
    }

    #[test]
    fn pages_round_up() {
        assert_eq!(
            ByteSize::from_bytes(1).to_epc_pages_ceil(),
            EpcPages::new(1)
        );
        assert_eq!(
            ByteSize::from_bytes(4096).to_epc_pages_ceil(),
            EpcPages::new(1)
        );
        assert_eq!(
            ByteSize::from_bytes(4097).to_epc_pages_ceil(),
            EpcPages::new(2)
        );
        assert_eq!(ByteSize::ZERO.to_epc_pages_ceil(), EpcPages::ZERO);
    }

    #[test]
    fn arithmetic_works() {
        let a = ByteSize::from_mib(10);
        let b = ByteSize::from_mib(4);
        assert_eq!(a - b, ByteSize::from_mib(6));
        assert_eq!(a.saturating_sub(ByteSize::from_mib(20)), ByteSize::ZERO);
        assert_eq!(ByteSize::from_mib(3) * 2, ByteSize::from_mib(6));
        assert_eq!(a.mul_f64(0.5), ByteSize::from_mib(5));

        let p = EpcPages::new(100);
        assert_eq!(p + EpcPages::new(28), EpcPages::new(128));
        assert_eq!(p.saturating_sub(EpcPages::new(200)), EpcPages::ZERO);
        assert_eq!(p.min(EpcPages::new(50)), EpcPages::new(50));
    }

    #[test]
    fn sums() {
        let total: ByteSize = (1..=3).map(ByteSize::from_mib).sum();
        assert_eq!(total, ByteSize::from_mib(6));
        let pages: EpcPages = (1..=3).map(EpcPages::new).sum();
        assert_eq!(pages, EpcPages::new(6));
    }

    #[test]
    fn display_formats() {
        assert_eq!(ByteSize::from_gib(64).to_string(), "64.0GiB");
        assert_eq!(ByteSize::from_mib(93).to_string(), "93.0MiB");
        assert_eq!(ByteSize::from_kib(4).to_string(), "4.0KiB");
        assert_eq!(ByteSize::from_bytes(12).to_string(), "12B");
        assert_eq!(EpcPages::new(5).to_string(), "5 pages");
    }

    #[test]
    fn usable_fraction_matches_ratio() {
        let derived = PRM_SIZE.mul_f64(USABLE_EPC_FRACTION);
        assert_eq!(derived, USABLE_EPC);
    }
}

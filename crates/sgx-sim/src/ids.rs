//! Identifiers shared across the SGX substrate.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A process identifier, as used by the per-process EPC-usage ioctl (§V-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Pid(u32);

impl Pid {
    /// Creates a process identifier.
    pub const fn new(pid: u32) -> Self {
        Pid(pid)
    }

    /// The raw numeric pid.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid:{}", self.0)
    }
}

/// A unique identifier for an enclave registered with the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EnclaveId(u64);

impl EnclaveId {
    pub(crate) const fn new(id: u64) -> Self {
        EnclaveId(id)
    }

    /// The raw numeric identifier.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for EnclaveId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "enclave:{}", self.0)
    }
}

/// A cgroup path, used by the paper as the pod identifier when
/// communicating EPC limits from Kubelet to the driver (§V-D).
///
/// The paper chose cgroup paths because (i) they are readily available in
/// both Kubelet and the kernel, (ii) all containers of one pod share the
/// same path while distinct pods never do, and (iii) the path exists before
/// the containers start, so limits are in place by enclave-initialisation
/// time.
///
/// # Examples
///
/// ```
/// use sgx_sim::CgroupPath;
///
/// let pod = CgroupPath::new("/kubepods/besteffort/pod-42");
/// assert_eq!(pod.as_str(), "/kubepods/besteffort/pod-42");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CgroupPath(String);

impl CgroupPath {
    /// Creates a cgroup path.
    ///
    /// # Panics
    ///
    /// Panics if `path` is empty: an empty pod identifier would let two
    /// unrelated pods share one limit.
    pub fn new(path: impl Into<String>) -> Self {
        let path = path.into();
        assert!(!path.is_empty(), "cgroup path must not be empty");
        CgroupPath(path)
    }

    /// The path as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for CgroupPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl AsRef<str> for CgroupPath {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl From<&str> for CgroupPath {
    fn from(path: &str) -> Self {
        CgroupPath::new(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display() {
        assert_eq!(Pid::new(7).to_string(), "pid:7");
        assert_eq!(EnclaveId::new(3).to_string(), "enclave:3");
        assert_eq!(CgroupPath::new("/a/b").to_string(), "/a/b");
    }

    #[test]
    fn cgroup_conversions() {
        let p: CgroupPath = "/kubepods/pod-1".into();
        assert_eq!(p.as_ref(), "/kubepods/pod-1");
        assert_eq!(p.as_str(), "/kubepods/pod-1");
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_cgroup_rejected() {
        let _ = CgroupPath::new("");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let set: HashSet<Pid> = [Pid::new(1), Pid::new(2), Pid::new(1)]
            .into_iter()
            .collect();
        assert_eq!(set.len(), 2);
        assert!(EnclaveId::new(1) < EnclaveId::new(2));
    }
}

//! Workspace smoke test: the DES kernel drives virtual time deterministically.

use des::{EventQueue, SimDuration, SimTime};

#[test]
fn event_queue_round_trip() {
    let mut q = EventQueue::new();
    q.schedule(SimTime::from_secs(1), "a");
    q.schedule_after(SimDuration::from_secs(2), "b");
    assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
    assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
    assert_eq!(q.now(), SimTime::from_secs(2));
}

//! SGX-awareness invariants of the scheduling layer, exercised through
//! the full orchestrator (not just the policy functions).

use cluster::api::PodSpec;
use cluster::topology::ClusterSpec;
use des::{SimDuration, SimTime};
use orchestrator::{
    Orchestrator, OrchestratorConfig, PodOutcome, DEFAULT_SCHEDULER, SGX_BINPACK, SGX_SPREAD,
};
use sgx_sim::units::ByteSize;

fn orch(default_scheduler: &str) -> Orchestrator {
    Orchestrator::new(
        ClusterSpec::paper_cluster(),
        OrchestratorConfig::paper().with_default_scheduler(default_scheduler),
    )
}

fn sgx_pod(name: &str, mib: u64) -> PodSpec {
    PodSpec::builder(name)
        .sgx_resources(ByteSize::from_mib(mib))
        .duration(SimDuration::from_secs(60))
        .build()
}

fn std_pod(name: &str, gib: u64) -> PodSpec {
    PodSpec::builder(name)
        .memory_resources(ByteSize::from_gib(gib))
        .duration(SimDuration::from_secs(60))
        .build()
}

#[test]
fn sgx_aware_schedulers_preserve_sgx_nodes_for_sgx_jobs() {
    for scheduler in [SGX_BINPACK, SGX_SPREAD] {
        let mut orch = orch(scheduler);
        for i in 0..20 {
            orch.submit(std_pod(&format!("std-{i}"), 2), SimTime::ZERO);
        }
        for outcome in orch.scheduler_pass(SimTime::from_secs(5)) {
            assert!(
                outcome.node.as_str().starts_with("std"),
                "{scheduler}: standard pod landed on {} with standard capacity free",
                outcome.node
            );
        }
    }
}

#[test]
fn standard_jobs_fall_back_to_sgx_nodes_only_when_necessary() {
    let mut orch = orch(SGX_BINPACK);
    // Fill both standard nodes (2 × 64 GiB) with 60 GiB pods, twice.
    for i in 0..2 {
        orch.submit(std_pod(&format!("big-{i}"), 60), SimTime::ZERO);
    }
    orch.scheduler_pass(SimTime::from_secs(5));
    // 4 GiB pods now only fit the 8 GiB SGX machines.
    orch.submit(std_pod("spill", 6), SimTime::from_secs(6));
    let outcomes = orch.scheduler_pass(SimTime::from_secs(10));
    assert_eq!(outcomes.len(), 1);
    assert!(outcomes[0].node.as_str().starts_with("sgx"));
}

#[test]
fn binpack_concentrates_while_spread_balances() {
    let mut binpack = orch(SGX_BINPACK);
    let mut spread = orch(SGX_SPREAD);
    for orch in [&mut binpack, &mut spread] {
        for i in 0..4 {
            orch.submit(sgx_pod(&format!("e{i}"), 10), SimTime::ZERO);
        }
    }
    let nodes_used = |outcomes: &[orchestrator::BindOutcome]| {
        let mut nodes: Vec<&str> = outcomes.iter().map(|o| o.node.as_str()).collect();
        nodes.sort();
        nodes.dedup();
        nodes.len()
    };
    let b = binpack.scheduler_pass(SimTime::from_secs(5));
    let s = spread.scheduler_pass(SimTime::from_secs(5));
    assert_eq!(nodes_used(&b), 1, "binpack fills one node first");
    assert_eq!(nodes_used(&s), 2, "spread balances across both SGX nodes");
}

#[test]
fn stock_scheduler_is_not_sgx_aware() {
    let mut orch = orch(DEFAULT_SCHEDULER);
    orch.submit(std_pod("p", 2), SimTime::ZERO);
    let outcomes = orch.scheduler_pass(SimTime::from_secs(5));
    // Least-requested across all nodes: the (empty) SGX node wins the
    // tie-break — exactly the behaviour the paper's scheduler fixes.
    assert!(outcomes[0].node.as_str().starts_with("sgx"));
}

#[test]
fn fcfs_is_a_priority_not_head_of_line_blocking() {
    let mut orch = orch(SGX_BINPACK);
    // Two 60 MiB pods occupy both SGX nodes.
    orch.submit(sgx_pod("a", 60), SimTime::ZERO);
    orch.submit(sgx_pod("b", 60), SimTime::ZERO);
    // A third 60 MiB pod cannot fit; a later 10 MiB pod can.
    let blocked = orch.submit(sgx_pod("c", 60), SimTime::ZERO);
    let small = orch.submit(sgx_pod("d", 10), SimTime::ZERO);
    orch.scheduler_pass(SimTime::from_secs(5));
    assert!(matches!(
        orch.record(blocked).unwrap().outcome,
        PodOutcome::Pending
    ));
    assert!(matches!(
        orch.record(small).unwrap().outcome,
        PodOutcome::Running { .. }
    ));
}

#[test]
fn multi_scheduler_deployment_routes_per_pod() {
    // As in §V-B: several schedulers run side by side; each pod names its
    // own. The default only handles unrouted pods.
    let mut orch = orch(SGX_BINPACK);
    let mut spread_pod = sgx_pod("via-spread", 10);
    spread_pod.scheduler = Some(SGX_SPREAD.to_string());
    let mut stock_pod = std_pod("via-stock", 1);
    stock_pod.scheduler = Some(DEFAULT_SCHEDULER.to_string());
    let unrouted = sgx_pod("via-default", 10);

    orch.submit(spread_pod, SimTime::ZERO);
    orch.submit(stock_pod, SimTime::ZERO);
    orch.submit(unrouted, SimTime::ZERO);
    let outcomes = orch.scheduler_pass(SimTime::from_secs(5));
    assert_eq!(outcomes.len(), 3);
    for outcome in &outcomes {
        assert!(outcome.report.started());
    }
}

#[test]
fn queue_wait_includes_the_scheduling_period() {
    let mut orch = orch(SGX_BINPACK);
    let uid = orch.submit(sgx_pod("p", 10), SimTime::ZERO);
    orch.scheduler_pass(SimTime::from_secs(5));
    let waiting = orch.record(uid).unwrap().waiting_time().unwrap();
    assert!(waiting >= SimDuration::from_secs(5));
    assert!(waiting < SimDuration::from_secs(6)); // + startup only
}

//! Integration tests for the extension features: attestation, live
//! migration / rebalancing / draining (§VIII), SGX2 dynamic memory
//! (§VI-G) and billing (§III/§VI-F) — exercised through the full stack.

use cluster::api::{NodeName, PodSpec, PodUid, ResourceRequirements, Resources};
use cluster::machine::MachineSpec;
use cluster::node::NodeRole;
use cluster::topology::{Cluster, ClusterSpec};
use des::{SimDuration, SimTime};
use orchestrator::billing::{Invoice, PriceSheet};
use orchestrator::{Orchestrator, OrchestratorConfig};
use sgx_sim::attestation::{Aesm, Measurement, QuoteVerdict, Signer};
use sgx_sim::units::{ByteSize, EpcPages};
use stress::Stressor;

fn sgx2_cluster() -> ClusterSpec {
    ClusterSpec::new()
        .with_node("master", MachineSpec::dell_r330(), NodeRole::Master)
        .with_node("sgx2-1", MachineSpec::sgx2_node(), NodeRole::Worker)
        .with_node("sgx2-2", MachineSpec::sgx2_node(), NodeRole::Worker)
}

/// §VI-G: "variations of EPC usage can already happen…" — a pod that grows
/// its enclave mid-run is picked up by the probes, and the scheduler's
/// measured view steers later pods away from the node.
#[test]
fn sgx2_growth_is_visible_to_the_scheduler() {
    let mut orch = Orchestrator::new(sgx2_cluster(), OrchestratorConfig::paper());
    let elastic = PodSpec::builder("elastic")
        .requirements(ResourceRequirements::exact(Resources::with_epc(
            ByteSize::ZERO,
            EpcPages::from_mib_ceil(80),
        )))
        .stressor(Stressor::epc(ByteSize::from_mib(10)))
        .duration(SimDuration::from_secs(600))
        .build();
    let uid = orch.submit(elastic, SimTime::ZERO);
    let outcomes = orch.scheduler_pass(SimTime::from_secs(5));
    let node = outcomes[0].node.clone();

    // The enclave grows from 10 to 80 MiB while running (EDMM).
    orch.cluster_mut()
        .node_mut(&node)
        .unwrap()
        .augment_pod(uid, EpcPages::from_mib_ceil(70))
        .unwrap();
    orch.probe_pass(SimTime::from_secs(10));

    let view = orch.capture_view(SimTime::from_secs(12));
    let node_view = view.node(&node).unwrap();
    assert_eq!(node_view.epc_measured, ByteSize::from_mib(80));

    // A 40 MiB pod no longer fits there — the SGX-aware scheduler places
    // it on the other node.
    let follower = PodSpec::builder("follower")
        .sgx_resources(ByteSize::from_mib(40))
        .build();
    let f_uid = orch.submit(follower, SimTime::from_secs(12));
    let outcomes = orch.scheduler_pass(SimTime::from_secs(15));
    assert_eq!(outcomes[0].uid, f_uid);
    assert_ne!(outcomes[0].node, node);
}

/// §VI-G on SGX1: growth requests fail with a clear error.
#[test]
fn sgx1_cluster_rejects_dynamic_growth() {
    let mut orch = Orchestrator::new(ClusterSpec::paper_cluster(), OrchestratorConfig::paper());
    let uid = orch.submit(
        PodSpec::builder("static")
            .sgx_resources(ByteSize::from_mib(10))
            .build(),
        SimTime::ZERO,
    );
    let outcomes = orch.scheduler_pass(SimTime::from_secs(5));
    let node = outcomes[0].node.clone();
    let err = orch
        .cluster_mut()
        .node_mut(&node)
        .unwrap()
        .augment_pod(uid, EpcPages::ONE)
        .unwrap_err();
    assert!(matches!(
        err,
        cluster::ClusterError::Sgx(sgx_sim::SgxError::DynamicMemoryUnsupported)
    ));
}

/// End-to-end attested migration across the real cluster topology, with
/// distinct per-node platforms.
#[test]
fn cluster_nodes_have_distinct_attestation_platforms() {
    let cluster = Cluster::build(&ClusterSpec::paper_cluster());
    let platforms: Vec<u64> = cluster
        .sgx_nodes()
        .map(|n| n.platform().expect("SGX nodes have platforms"))
        .collect();
    assert_eq!(platforms.len(), 2);
    assert_ne!(platforms[0], platforms[1]);
    // Non-SGX nodes have none.
    assert!(cluster
        .node(&NodeName::new("std-1"))
        .unwrap()
        .platform()
        .is_none());
}

/// Remote attestation against a scheduled pod: a verifier can confirm the
/// enclave running on the chosen node.
#[test]
fn remote_attestation_of_a_scheduled_pod() {
    let mut orch = Orchestrator::new(ClusterSpec::paper_cluster(), OrchestratorConfig::paper());
    let uid = orch.submit(
        PodSpec::builder("kv")
            .sgx_resources(ByteSize::from_mib(16))
            .build(),
        SimTime::ZERO,
    );
    let outcomes = orch.scheduler_pass(SimTime::from_secs(5));
    let node_name = outcomes[0].node.clone();

    let node = orch.cluster().node(&node_name).unwrap();
    let pod = &node.pods()[&uid];
    let enclave = pod.enclave.expect("SGX pod has an enclave");
    let driver = node.driver().unwrap();

    // The verifier knows the code identity and expected size.
    let expected = driver
        .measure_enclave(enclave, pod.spec.image.name())
        .unwrap();
    let signer = Signer::new("tenant");
    let report = driver.aesm().report(expected, &signer, 0xD00D);
    let quote = driver.aesm().quote(&report).unwrap();
    assert_eq!(Aesm::verify_quote(&quote, expected), QuoteVerdict::Trusted);

    // A verifier expecting different code rejects it.
    let wrong = Measurement::compute("other-code", EpcPages::from_mib_ceil(16));
    assert_eq!(
        Aesm::verify_quote(&quote, wrong),
        QuoteVerdict::WrongMeasurement
    );
}

/// Drain + migration end to end: a maintenance drain empties an SGX node
/// without losing a single pod, and billing still adds up afterwards.
#[test]
fn drain_then_bill_everything() {
    let mut orch = Orchestrator::new(ClusterSpec::paper_cluster(), OrchestratorConfig::paper());
    let mut uids = Vec::new();
    for i in 0..4 {
        uids.push(
            orch.submit(
                PodSpec::builder(format!("svc-{i}"))
                    .sgx_resources(ByteSize::from_mib(15))
                    .duration(SimDuration::from_secs(600))
                    .build(),
                SimTime::ZERO,
            ),
        );
    }
    orch.scheduler_pass(SimTime::from_secs(5));
    let drained = NodeName::new("sgx-1");
    let moves = orch.drain_node(&drained, SimTime::from_secs(100)).unwrap();
    assert_eq!(moves.len(), 4);

    for &uid in &uids {
        orch.complete_pod(uid, SimTime::from_secs(700)).unwrap();
    }
    let invoice = Invoice::compute(orch.records(), &PriceSheet::paper_cluster());
    assert_eq!(invoice.lines().len(), 4);
    assert!(invoice.total() > 0.0);
    // Every pod is billed for its full reservation window despite moving.
    for line in invoice.lines() {
        assert!(line.reserved_hours > 0.15, "{line:?}");
        assert!(line.epc_cost > 0.0);
        assert_eq!(line.memory_cost, 0.0);
    }
}

/// The monitoring database survives a snapshot/restore cycle mid-run and
/// the scheduler view is unchanged — the persistence story of §V-C.
#[test]
fn tsdb_snapshot_preserves_the_scheduler_view() {
    let mut orch = Orchestrator::new(ClusterSpec::paper_cluster(), OrchestratorConfig::paper());
    orch.submit(
        PodSpec::builder("job")
            .sgx_resources(ByteSize::from_mib(12))
            .build(),
        SimTime::ZERO,
    );
    orch.scheduler_pass(SimTime::from_secs(5));
    orch.probe_pass(SimTime::from_secs(10));

    let snapshot = orch.db().snapshot();
    let restored = tsdb::Database::restore(&snapshot).unwrap();
    assert_eq!(restored.point_count(), orch.db().point_count());

    let q = tsdb::influxql::parse(
        r#"SELECT SUM(epc) FROM
           (SELECT MAX(value) FROM "sgx/epc"
            WHERE value <> 0 AND time >= now() - 25s
            GROUP BY pod_name, nodename)
           GROUP BY nodename"#,
    )
    .unwrap();
    assert_eq!(
        orch.db().query(&q, SimTime::from_secs(12)),
        restored.query(&q, SimTime::from_secs(12))
    );
}

/// The registry pull model only slows the very first pod per image/node.
#[test]
fn registry_pulls_amortise_across_pods() {
    let mut orch = Orchestrator::new(ClusterSpec::paper_cluster(), OrchestratorConfig::paper());
    for node in orch.cluster_mut().nodes_mut() {
        node.set_registry(Some(cluster::registry::RegistryModel::paper_network()));
    }
    // Two SGX pods of equal size: binpack stacks them on one node, so the
    // second reuses the image the first pulled.
    let a = orch.submit(
        PodSpec::builder("first")
            .sgx_resources(ByteSize::from_mib(8))
            .build(),
        SimTime::ZERO,
    );
    let b = orch.submit(
        PodSpec::builder("second")
            .sgx_resources(ByteSize::from_mib(8))
            .build(),
        SimTime::ZERO,
    );
    let outcomes = orch.scheduler_pass(SimTime::from_secs(5));
    assert_eq!(outcomes[0].uid, a);
    assert_eq!(outcomes[1].uid, b);
    assert_eq!(outcomes[0].node, outcomes[1].node);
    assert!(outcomes[0].report.startup_delay > SimDuration::from_secs(3));
    assert!(outcomes[1].report.startup_delay < SimDuration::from_millis(300));
    let _ = PodUid::new(0);
}

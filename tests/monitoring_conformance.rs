//! Conformance of the monitoring pipeline: what the probes scrape, what
//! the database stores, and what the scheduler's queries return must all
//! agree with the driver's ground truth.

use cluster::api::{NodeName, PodSpec, PodUid};
use cluster::machine::MachineSpec;
use cluster::node::{Node, NodeRole};
use cluster::probe::{Probe, MEASUREMENT_EPC};
use des::rng::seeded_rng;
use des::{SimDuration, SimTime};
use sgx_sim::units::ByteSize;
use tsdb::Database;

fn sgx_node(name: &str) -> Node {
    Node::new(
        NodeName::new(name),
        MachineSpec::sgx_node(),
        NodeRole::Worker,
    )
}

#[test]
fn probe_points_match_driver_ground_truth() {
    let mut rng = seeded_rng(1);
    let mut node = sgx_node("sgx-1");
    for (uid, mib) in [(1u64, 10u64), (2, 20), (3, 30)] {
        let spec = PodSpec::builder(format!("p{uid}"))
            .sgx_resources(ByteSize::from_mib(mib))
            .build();
        node.run_pod(PodUid::new(uid), spec, SimTime::ZERO, &mut rng)
            .unwrap();
    }

    let [_, sgx_probe] = Probe::default_pair();
    let points = sgx_probe.sample(&node, SimTime::from_secs(10));
    assert_eq!(points.len(), 3);

    let driver = node.driver().unwrap();
    let total_sampled: f64 = points.iter().map(tsdb::Point::value).sum();
    let committed = driver.epc().committed_pages().to_bytes().as_bytes() as f64;
    assert_eq!(total_sampled, committed);
    // And the driver's free-page counter complements it.
    assert_eq!(
        driver.sgx_nr_free_pages() + driver.epc().committed_pages(),
        driver.sgx_nr_total_epc_pages()
    );
}

#[test]
fn listing1_reproduces_per_node_sums_across_nodes() {
    let mut rng = seeded_rng(2);
    let mut db = Database::new();
    let mut nodes = vec![sgx_node("sgx-1"), sgx_node("sgx-2")];
    let sizes = [(0usize, 1u64, 16u64), (0, 2, 8), (1, 3, 40)];
    for &(n, uid, mib) in &sizes {
        let spec = PodSpec::builder(format!("p{uid}"))
            .sgx_resources(ByteSize::from_mib(mib))
            .build();
        nodes[n]
            .run_pod(PodUid::new(uid), spec, SimTime::ZERO, &mut rng)
            .unwrap();
    }
    let [_, probe] = Probe::default_pair();
    for t in [5u64, 15] {
        for node in &nodes {
            db.extend(probe.sample(node, SimTime::from_secs(t)));
        }
    }

    let query = tsdb::influxql::parse(
        r#"SELECT SUM(epc) FROM
           (SELECT MAX(value) FROM "sgx/epc"
            WHERE value <> 0 AND time >= now() - 25s
            GROUP BY pod_name, nodename)
           GROUP BY nodename"#,
    )
    .unwrap();
    let rows = db.query(&query, SimTime::from_secs(20));
    assert_eq!(rows.len(), 2);
    assert_eq!(
        rows[0].value,
        ByteSize::from_mib(24).as_bytes() as f64,
        "sgx-1 holds 16 + 8 MiB"
    );
    assert_eq!(rows[1].value, ByteSize::from_mib(40).as_bytes() as f64);
}

#[test]
fn terminated_pods_age_out_of_the_window() {
    let mut rng = seeded_rng(3);
    let mut db = Database::new();
    let mut node = sgx_node("sgx-1");
    let spec = PodSpec::builder("ephemeral")
        .sgx_resources(ByteSize::from_mib(10))
        .build();
    node.run_pod(PodUid::new(1), spec, SimTime::ZERO, &mut rng)
        .unwrap();

    let [_, probe] = Probe::default_pair();
    db.extend(probe.sample(&node, SimTime::from_secs(10)));
    node.terminate_pod(PodUid::new(1)).unwrap();
    // Later samples contain nothing for the pod…
    assert!(probe.sample(&node, SimTime::from_secs(20)).is_empty());

    let query = tsdb::influxql::parse(
        r#"SELECT SUM(epc) FROM
           (SELECT MAX(value) FROM "sgx/epc"
            WHERE value <> 0 AND time >= now() - 25s
            GROUP BY pod_name, nodename)
           GROUP BY nodename"#,
    )
    .unwrap();
    // …but the old sample lingers inside the 25 s window (the "ghost"
    // retention the scheduler deliberately tolerates)…
    assert_eq!(db.query(&query, SimTime::from_secs(30)).len(), 1);
    // …and disappears once the window slides past it.
    assert!(db.query(&query, SimTime::from_secs(36)).is_empty());
}

#[test]
fn orchestrator_view_agrees_with_manual_query() {
    use orchestrator::{Orchestrator, OrchestratorConfig};

    let mut orch = Orchestrator::new(
        cluster::topology::ClusterSpec::paper_cluster(),
        OrchestratorConfig::paper(),
    );
    orch.submit(
        PodSpec::builder("job")
            .sgx_resources(ByteSize::from_mib(24))
            .duration(SimDuration::from_secs(600))
            .build(),
        SimTime::ZERO,
    );
    orch.scheduler_pass(SimTime::from_secs(5));
    orch.probe_pass(SimTime::from_secs(10));

    let view = orch.capture_view(SimTime::from_secs(12));
    let measured: Vec<_> = view
        .iter()
        .filter(|(_, v)| !v.epc_measured.is_zero())
        .collect();
    assert_eq!(measured.len(), 1);
    assert_eq!(measured[0].1.epc_measured, ByteSize::from_mib(24));

    // The same number through the raw query path.
    let query = tsdb::influxql::parse(&format!(
        "SELECT SUM(epc) FROM (SELECT MAX(value) FROM \"{MEASUREMENT_EPC}\" \
             WHERE value <> 0 AND time >= now() - 25s GROUP BY pod_name, nodename) \
             GROUP BY nodename"
    ))
    .unwrap();
    let rows = orch.db().query(&query, SimTime::from_secs(12));
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].value, ByteSize::from_mib(24).as_bytes() as f64);
}

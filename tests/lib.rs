//! Placeholder library target; the real content of this package lives in its
//! integration-test targets (one per `*.rs` file declared in `Cargo.toml`).

//! End-to-end integration: trace generation → preparation → workload
//! materialisation → replay, with cross-crate invariants checked on the
//! result.

use borg_trace::JobKind;
use orchestrator::PodOutcome;
use sgx_orchestrator::Experiment;

#[test]
fn every_submitted_job_is_accounted_for() {
    let exp = Experiment::quick(1).sgx_ratio(0.5);
    let workload = exp.workload();
    let result = exp.run();

    assert_eq!(result.runs().len(), workload.len());
    let terminal = result.completed_count() + result.denied_count() + result.unschedulable_count();
    assert_eq!(terminal, workload.len(), "no job may be left dangling");
    assert!(!result.timed_out());
}

#[test]
fn waiting_and_turnaround_are_consistent() {
    let result = Experiment::quick(2).sgx_ratio(0.5).run();
    for run in result.runs() {
        let record = &run.record;
        match &record.outcome {
            PodOutcome::Completed { .. } => {
                let started = record.started_at.expect("completed implies started");
                let finished = record.finished_at.expect("completed implies finished");
                assert!(started >= record.submitted_at);
                assert!(finished >= started);
                assert!(record.turnaround().unwrap() >= record.waiting_time().unwrap());
            }
            PodOutcome::Denied { .. } => {
                // Killed at launch: start and finish coincide.
                assert_eq!(record.started_at, record.finished_at);
            }
            PodOutcome::Unschedulable => {
                assert!(record.started_at.is_none());
                assert!(record.finished_at.is_none());
            }
            PodOutcome::Pending | PodOutcome::Running { .. } => {
                panic!("replay ended with live pod {:?}", record.uid)
            }
        }
    }
}

#[test]
fn denied_jobs_only_exist_when_limits_are_enforced() {
    let exp = Experiment::quick(3).sgx_ratio(1.0);
    let enforced = exp.clone().run();
    let disabled = exp.limits(false).run();
    assert!(enforced.denied_count() > 0, "over-users must be killed");
    assert_eq!(disabled.denied_count(), 0);
    // Disabling limits never *reduces* completions of honest jobs.
    assert!(disabled.completed_count() >= enforced.completed_count());
}

#[test]
fn sgx_designation_only_touches_designated_jobs() {
    // The same trace at two ratios: jobs keep identity, duration and
    // submission; only kind and multipliers may differ.
    let a = Experiment::quick(4).sgx_ratio(0.0).workload();
    let b = Experiment::quick(4).sgx_ratio(1.0).workload();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.submit, y.submit);
        assert_eq!(x.duration, y.duration);
        assert_eq!(x.kind, JobKind::Standard);
        assert_eq!(y.kind, JobKind::Sgx);
    }
}

#[test]
fn pending_series_starts_and_ends_empty() {
    let result = Experiment::quick(5).sgx_ratio(1.0).run();
    let series = result.pending_epc_series();
    assert!(!series.is_empty());
    assert_eq!(series.points().last().unwrap().1, 0.0);
    // The series is the queue's EPC backlog: never negative.
    assert!(series.points().iter().all(|&(_, v)| v >= 0.0));
}

#[test]
fn same_seed_same_everything_different_seed_different_trace() {
    let a = Experiment::quick(6).run();
    let b = Experiment::quick(6).run();
    assert_eq!(a.runs(), b.runs());
    assert_eq!(
        a.pending_epc_series().points(),
        b.pending_epc_series().points()
    );
    let c = Experiment::quick(7).run();
    assert_ne!(a.runs().len(), 0);
    assert_ne!(
        a.runs()
            .iter()
            .map(|r| r.record.submitted_at)
            .collect::<Vec<_>>(),
        c.runs()
            .iter()
            .map(|r| r.record.submitted_at)
            .collect::<Vec<_>>()
    );
}

#[test]
fn csv_round_trip_preserves_replay_behaviour() {
    // Persist the prepared trace through the CSV layer and verify the
    // replay is bit-identical.
    let exp = Experiment::quick(8).sgx_ratio(0.5);
    let trace = exp.prepared_trace();
    let text = borg_trace::csv::to_csv(&trace);
    let reloaded = borg_trace::csv::from_csv(&text).expect("round trip");
    assert_eq!(reloaded, trace);

    let params = borg_trace::WorkloadParams::paper(0.5, 8);
    let w1 = borg_trace::Workload::materialize(&trace, &params);
    let w2 = borg_trace::Workload::materialize(&reloaded, &params);
    assert_eq!(w1, w2);

    let r1 = simulation::replay(&w1, &exp.replay_config());
    let r2 = simulation::replay(&w2, &exp.replay_config());
    assert_eq!(r1.runs(), r2.runs());
}

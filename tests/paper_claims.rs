//! The paper's qualitative claims, asserted as tests (at quick scale so
//! the suite stays fast; the full-scale numbers live in the `fig*` bench
//! binaries and `EXPERIMENTS.md`).

use borg_trace::JobKind;
use sgx_orchestrator::Experiment;
use sgx_sim::cost::CostModel;
use sgx_sim::units::{ByteSize, USABLE_EPC};
use simulation::analysis::{mean_waiting_secs, waiting_cdf};

/// §VI-D / Fig. 7: bigger EPCs drain the backlog faster, monotonically,
/// and a large-enough EPC shows no contention at all.
#[test]
fn fig7_claim_bigger_epc_smaller_makespan() {
    let makespans: Vec<_> = [32u64, 64, 128, 256]
        .iter()
        .map(|&mib| {
            Experiment::quick(42)
                .sgx_ratio(1.0)
                .epc_total(ByteSize::from_mib(mib))
                .run()
                .end_time()
        })
        .collect();
    for pair in makespans.windows(2) {
        assert!(
            pair[0] >= pair[1],
            "makespans must not increase: {makespans:?}"
        );
    }
    assert!(
        makespans[0] > makespans[3],
        "32 MiB must be visibly slower than 256 MiB"
    );
    // 128 vs 256 MiB: contention has essentially vanished.
    let rel = makespans[2].as_secs_f64() / makespans[3].as_secs_f64();
    assert!(rel < 1.1, "128 vs 256 MiB ratio {rel}");
}

/// Fig. 8: waiting times grow with the share of SGX jobs; small shares
/// stay close to the no-SGX baseline.
#[test]
fn fig8_claim_waits_grow_with_sgx_share() {
    let mean_wait = |ratio: f64| {
        let result = Experiment::quick(42)
            .sgx_ratio(ratio)
            .epc_total(ByteSize::from_mib(48))
            .run();
        mean_waiting_secs(&result, None)
    };
    let none = mean_wait(0.0);
    let half = mean_wait(0.5);
    let full = mean_wait(1.0);
    assert!(
        full > 2.0 * none,
        "pure SGX ({full:.1}s) must clearly exceed no-SGX ({none:.1}s)"
    );
    assert!(
        half < (none + full) / 2.0,
        "50 % SGX ({half:.1}s) stays closer to the no-SGX baseline"
    );
}

/// Fig. 6: the startup model's two regimes and the ≈100 ms PSW constant.
#[test]
fn fig6_claim_startup_regimes() {
    let m = CostModel::paper_defaults();
    // Below the usable limit: 1.6 ms/MiB.
    let a = m.allocation_time(ByteSize::from_mib(20), USABLE_EPC);
    let b = m.allocation_time(ByteSize::from_mib(40), USABLE_EPC);
    let slope_below = (b.as_millis_f64() - a.as_millis_f64()) / 20.0;
    assert!((slope_below - 1.6).abs() < 0.01);
    // Above: 4.5 ms/MiB plus a fixed jump.
    let c = m.allocation_time(ByteSize::from_mib(100), USABLE_EPC);
    let d = m.allocation_time(ByteSize::from_mib(120), USABLE_EPC);
    let slope_above = (d.as_millis_f64() - c.as_millis_f64()) / 20.0;
    assert!((slope_above - 4.5).abs() < 0.01);
    assert!(c > b + des::SimDuration::from_millis(200));
    assert_eq!(m.psw_startup().as_millis(), 100);
}

/// Fig. 11: strict limits annihilate the malicious containers' effect —
/// honest waits with limits on and squatters present stay near the
/// trace-only baseline, while disabling limits degrades with the stolen
/// fraction.
#[test]
fn fig11_claim_limits_annihilate_the_attack() {
    let base = || {
        Experiment::quick(42)
            .sgx_ratio(1.0)
            .epc_total(ByteSize::from_mib(64))
    };
    let protected = base().malicious(0.5).run();
    let baseline = base().limits(false).run();
    let stolen_quarter = base().limits(false).malicious(0.25).run();
    let stolen_half = base().limits(false).malicious(0.5).run();

    let p95 = |r: &simulation::ReplayResult| waiting_cdf(r, None).quantile(0.95).unwrap_or(0.0);
    assert!(
        p95(&stolen_half) > p95(&stolen_quarter),
        "more stolen EPC, longer waits: {} vs {}",
        p95(&stolen_half),
        p95(&stolen_quarter)
    );
    assert!(
        p95(&stolen_half) > 3.0 * p95(&baseline),
        "the unprotected attack must hurt: {} vs baseline {}",
        p95(&stolen_half),
        p95(&baseline)
    );
    assert!(
        p95(&protected) < 2.0 * p95(&baseline),
        "enforcement keeps honest waits near the baseline: {} vs {}",
        p95(&protected),
        p95(&baseline)
    );
}

/// §VI-F: the incentive structure — malicious pods are killed at launch
/// when enforcement is on, and so are trace jobs that under-declare.
#[test]
fn fig11_claim_denials_fall_on_over_users() {
    let result = Experiment::quick(42).sgx_ratio(1.0).malicious(0.5).run();
    for run in result.runs() {
        let denied = matches!(run.record.outcome, orchestrator::PodOutcome::Denied { .. });
        if run.malicious {
            assert!(denied, "malicious squatters must be denied");
        }
        if denied && !run.malicious {
            let job = run.job.expect("honest runs carry their job");
            assert!(
                job.epc_usage() > job.epc_request(),
                "only page-level over-users may be denied"
            );
        }
    }
}

/// The measured-usage scheduler routes around stolen EPC that the
/// requests-only scheduler cannot see (the paper's core design claim).
#[test]
fn measured_usage_beats_requests_only_under_attack() {
    let run = |scheduler: &str| {
        Experiment::quick(42)
            .sgx_ratio(1.0)
            .epc_total(ByteSize::from_mib(64))
            .scheduler(scheduler)
            .limits(false)
            .malicious(0.5)
            .run()
    };
    let aware = run(orchestrator::SGX_BINPACK);
    let blind = run(orchestrator::DEFAULT_SCHEDULER);
    // The blind scheduler over-commits the node, so its jobs suffer the
    // paging slowdown; turnarounds inflate.
    let aware_t = simulation::analysis::total_turnaround(&aware, Some(JobKind::Sgx));
    let blind_t = simulation::analysis::total_turnaround(&blind, Some(JobKind::Sgx));
    assert!(
        blind_t > aware_t,
        "blind {} h vs aware {} h",
        blind_t.as_hours_f64(),
        aware_t.as_hours_f64()
    );
}

//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize` / `Deserialize` names in both the trait and
//! macro namespaces, exactly like the real crate with its `derive`
//! feature, so `use serde::{Deserialize, Serialize};` plus
//! `#[derive(Serialize, Deserialize)]` compile unchanged. The derives
//! expand to nothing (see `serde_derive`); the traits are markers. If a
//! future change needs real serialisation, replace this vendored crate
//! with the genuine one — every annotation in the workspace is already in
//! place.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

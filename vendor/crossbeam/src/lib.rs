//! Offline stand-in for `crossbeam`.
//!
//! The only facility this workspace needs is scoped threads, which the
//! standard library has provided since Rust 1.63 with the same borrowing
//! guarantees crossbeam pioneered. [`thread`] re-exports the std
//! implementation so call sites read `crossbeam::thread::scope(...)` and
//! swap transparently for the real crate when a registry is available.

#![forbid(unsafe_code)]

/// Scoped threads (std-backed).
pub mod thread {
    pub use std::thread::{scope, Scope, ScopedJoinHandle};
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_the_stack() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move || chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(total, 10);
    }
}

//! Offline stand-in for `crossbeam`.
//!
//! Two facilities of the real crate are used by this workspace, both
//! re-implemented on std primitives so call sites swap transparently for
//! the registry crate when one is reachable:
//!
//! * [`thread`] — scoped threads, which the standard library has provided
//!   since Rust 1.63 with the same borrowing guarantees crossbeam
//!   pioneered.
//! * [`channel`] — `bounded` / `unbounded` MPSC channels with crossbeam's
//!   poison-free `Result` API, backed by `std::sync::mpsc`. The one
//!   semantic narrowing: `Receiver` is not cloneable (std channels are
//!   multi-producer single-consumer), so fan-in topologies use one
//!   receiver per consumer — exactly how the probe → tsdb ingestion
//!   pipeline is shaped.

#![forbid(unsafe_code)]

/// Scoped threads (std-backed).
pub mod thread {
    pub use std::thread::{scope, Scope, ScopedJoinHandle};
}

/// Multi-producer channels (std-backed).
pub mod channel {
    use std::fmt;
    use std::sync::mpsc;

    /// Creates a channel of bounded capacity: sends block once `cap`
    /// messages are in flight. `cap == 0` is a rendezvous channel (every
    /// send blocks until a receiver takes the message), matching
    /// crossbeam's zero-capacity semantics.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Flavor::Bounded(tx)), Receiver(rx))
    }

    /// Creates a channel of unbounded capacity: sends never block.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Flavor::Unbounded(tx)), Receiver(rx))
    }

    enum Flavor<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    /// The sending half of a channel. Cloneable: every producer thread
    /// holds its own `Sender`; the channel disconnects when all senders
    /// are dropped.
    pub struct Sender<T>(Flavor<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(match &self.0 {
                Flavor::Bounded(tx) => Flavor::Bounded(tx.clone()),
                Flavor::Unbounded(tx) => Flavor::Unbounded(tx.clone()),
            })
        }
    }

    impl<T> Sender<T> {
        /// Sends `message`, blocking while a bounded channel is full.
        ///
        /// # Errors
        ///
        /// Returns [`SendError`] (handing the message back) when every
        /// receiver has been dropped.
        pub fn send(&self, message: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Flavor::Bounded(tx) => tx.send(message).map_err(|e| SendError(e.0)),
                Flavor::Unbounded(tx) => tx.send(message).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] when the channel is empty and every
        /// sender has been dropped — the loop-exit signal for consumers.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Returns a pending message without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when no message is waiting;
        /// [`TryRecvError::Disconnected`] when every sender is gone.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Iterates over messages, blocking between them, until the
        /// channel disconnects.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;

        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// The channel is disconnected; the unsent message is handed back.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// The channel is empty and disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Why a [`Receiver::try_recv`] returned no message.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message waiting right now; senders still connected.
        Empty,
        /// Every sender has been dropped and the buffer is drained.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvError, TryRecvError};

    #[test]
    fn scoped_threads_borrow_the_stack() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move || chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(total, 10);
    }

    #[test]
    fn unbounded_delivers_in_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_blocks_at_capacity_until_drained() {
        let (tx, rx) = bounded(2);
        crate::thread::scope(|s| {
            let producer = s.spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut seen = 0;
            while let Ok(v) = rx.recv() {
                assert_eq!(v, seen);
                seen += 1;
            }
            assert_eq!(seen, 100);
            producer.join().unwrap();
        });
    }

    #[test]
    fn cloned_senders_fan_in() {
        let (tx, rx) = unbounded();
        let total: u64 = crate::thread::scope(|s| {
            for worker in 0..4u64 {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..25 {
                        tx.send(worker * 1000 + i).unwrap();
                    }
                });
            }
            drop(tx); // channel disconnects once all workers finish
            rx.iter().count() as u64
        });
        assert_eq!(total, 100);
    }

    #[test]
    fn disconnection_is_reported() {
        let (tx, rx) = bounded::<u8>(1);
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));

        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn zero_capacity_rendezvous() {
        let (tx, rx) = bounded(0);
        crate::thread::scope(|s| {
            s.spawn(move || tx.send(42u8).unwrap());
            assert_eq!(rx.recv(), Ok(42));
        });
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the exact API surface the workspace consumes: a
//! deterministic [`rngs::StdRng`] seeded through [`SeedableRng`], the
//! [`Rng`] core trait and the [`RngExt`] extension with `random` /
//! `random_range` / `random_bool`. The generator is xoshiro256++ with a
//! SplitMix64 seed expander — statistically solid and, crucially for the
//! simulation, a pure function of its 64-bit seed.

#![forbid(unsafe_code)]

pub mod rngs;

pub use rngs::StdRng;

/// A random number generator: the minimal core every sampler builds on.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Builds the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed, expanding it with
    /// SplitMix64 (the conventional seeding scheme for xoshiro).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from a generator's raw bits.
pub trait StandardUniform: Sized {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for u128 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl StandardUniform for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable uniformly.
pub trait SampleRange {
    /// The element type produced.
    type Output;

    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics on empty ranges.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let offset = u128::sample(rng) % span;
                ((self.start as u128).wrapping_add(offset)) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                let offset = u128::sample(rng) % span;
                ((start as u128).wrapping_add(offset)) as $t
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                self.start + <$t>::sample(rng) * (self.end - self.start)
            }
        }
    )*};
}

impl_range_float!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Draws a value of `T` from its standard distribution (uniform over
    /// the type's range; `[0, 1)` for floats).
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics on empty ranges.
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `p` lies in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        assert_eq!(a.random::<u64>(), b.random::<u64>());
        assert_ne!(
            StdRng::seed_from_u64(1).random::<u64>(),
            StdRng::seed_from_u64(2).random::<u64>()
        );
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.random_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn mean_of_unit_draws_is_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }
}

//! Concrete generators.

use crate::{Rng, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++.
///
/// Not cryptographically secure — it exists to make simulations a pure
/// function of their seed, exactly like `rand::rngs::StdRng` is used in
/// this workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("chunk of 8"));
        }
        // An all-zero state would be a fixed point; nudge it.
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        StdRng { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_exact_mut(8) {
            chunk.copy_from_slice(&splitmix64(&mut sm).to_le_bytes());
        }
        StdRng::from_seed(seed)
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ by Blackman & Vigna (public domain reference).
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = StdRng::from_seed([0; 32]);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, b);
        assert_ne!(a, 0);
    }

    #[test]
    fn streams_differ_by_seed() {
        let mut a = StdRng::seed_from_u64(0);
        let mut b = StdRng::seed_from_u64(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}

//! Offline stand-in for `serde_derive`.
//!
//! The workspace annotates its data types with
//! `#[derive(Serialize, Deserialize)]` for forward compatibility, but no
//! code path actually serialises through the serde traits (the tsdb wire
//! format is hand-rolled in `tsdb::wire`). These derives therefore expand
//! to nothing: the attribute stays valid, the dependency graph stays
//! intact, and no generated code can drift out of sync.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` helpers) and emits
/// no code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` helpers) and
/// emits no code.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

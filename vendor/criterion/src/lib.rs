//! Offline stand-in for `criterion`.
//!
//! Provides the API surface this workspace's benches use — `Criterion`,
//! `bench_function`, `benchmark_group` / `bench_with_input` / `finish`,
//! `BenchmarkId`, `Bencher::iter` and the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple wall-clock harness:
//! a short calibration pass sizes the batch, then a fixed number of
//! timed batches are run and the per-iteration median/min are printed.
//! No statistical regression analysis, plots, or saved baselines.

#![forbid(unsafe_code)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so call sites can use `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

const CALIBRATION_TARGET: Duration = Duration::from_millis(20);
const SAMPLE_TARGET: Duration = Duration::from_millis(60);
const SAMPLES: usize = 11;

/// Benchmark registry and runner.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <substring>` filters which benchmarks run,
        // mirroring real criterion's CLI behaviour.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Criterion { filter }
    }
}

impl Criterion {
    /// Runs a single benchmark under `id`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id, |b| f(b));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    fn run_one<F>(&mut self, id: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher { measurement: None };
        f(&mut bencher);
        match bencher.measurement {
            Some(m) => println!(
                "{id:<50} median {:>12}  min {:>12}  ({} iters/sample, {} samples)",
                format_ns(m.median_ns),
                format_ns(m.min_ns),
                m.iters_per_sample,
                m.samples
            ),
            None => println!("{id:<50} (no measurement: Bencher::iter never called)"),
        }
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` with `input`, labelled `<group>/<id>`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.label);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    /// Runs a benchmark inside the group without an input parameter.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, |b| f(b));
        self
    }

    /// Ends the group (kept for API compatibility; prints nothing extra).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `<function>/<parameter>` label.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Label consisting of the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

struct Measurement {
    median_ns: f64,
    min_ns: f64,
    iters_per_sample: u64,
    samples: usize,
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    measurement: Option<Measurement>,
}

impl Bencher {
    /// Measures `routine`, called in batches until timing stabilises.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibrate: how many iterations fit in the calibration window?
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std_black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= CALIBRATION_TARGET || iters >= 1 << 30 {
                let per_iter = elapsed.as_nanos().max(1) as f64 / iters as f64;
                iters = ((SAMPLE_TARGET.as_nanos() as f64 / per_iter).ceil() as u64).max(1);
                break;
            }
            iters = iters.saturating_mul(2);
        }

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let start = Instant::now();
            for _ in 0..iters {
                std_black_box(routine());
            }
            per_iter_ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        self.measurement = Some(Measurement {
            median_ns: per_iter_ns[per_iter_ns.len() / 2],
            min_ns: per_iter_ns[0],
            iters_per_sample: iters,
            samples: SAMPLES,
        });
    }

    /// Like [`iter`](Self::iter), but each iteration's input is produced
    /// by `setup` outside the timed region. Each routine call is timed
    /// individually (a few ns of clock overhead per call), so this suits
    /// routines that consume their input and take µs or more.
    pub fn iter_with_setup<S, I, O, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let timed_batch = |setup: &mut S, routine: &mut R, iters: u64| -> Duration {
            let mut elapsed = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                std_black_box(routine(input));
                elapsed += start.elapsed();
            }
            elapsed
        };

        let mut iters: u64 = 1;
        loop {
            let elapsed = timed_batch(&mut setup, &mut routine, iters);
            if elapsed >= CALIBRATION_TARGET || iters >= 1 << 30 {
                let per_iter = elapsed.as_nanos().max(1) as f64 / iters as f64;
                iters = ((SAMPLE_TARGET.as_nanos() as f64 / per_iter).ceil() as u64).max(1);
                break;
            }
            iters = iters.saturating_mul(2);
        }

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let elapsed = timed_batch(&mut setup, &mut routine, iters);
            per_iter_ns.push(elapsed.as_nanos() as f64 / iters as f64);
        }
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        self.measurement = Some(Measurement {
            median_ns: per_iter_ns[per_iter_ns.len() / 2],
            min_ns: per_iter_ns[0],
            iters_per_sample: iters,
            samples: SAMPLES,
        });
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { measurement: None };
        b.iter(|| (0..64u64).sum::<u64>());
        let m = b.measurement.expect("measurement recorded");
        assert!(m.min_ns > 0.0);
        assert!(m.median_ns >= m.min_ns);
    }

    #[test]
    fn format_units() {
        assert_eq!(format_ns(12.0), "12.0 ns");
        assert_eq!(format_ns(1_500.0), "1.50 µs");
        assert_eq!(format_ns(2_500_000.0), "2.50 ms");
    }
}

//! Offline stand-in for the `bytes` crate.
//!
//! `Bytes` is an immutable byte buffer, `BytesMut` a growable one, and the
//! [`Buf`] / [`BufMut`] traits carry the little-endian cursor operations
//! `tsdb::wire` uses. Backed by plain `Vec<u8>` — the zero-copy refcount
//! machinery of the real crate is irrelevant to this workspace.

#![forbid(unsafe_code)]

use std::ops::Deref;

/// An immutable, cheaply cloneable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: std::sync::Arc<Vec<u8>>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: std::sync::Arc::new(data.to_vec()),
        }
    }

    /// The buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.as_ref().clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes {
            data: std::sync::Arc::new(data),
        }
    }
}

/// A growable byte buffer for encoding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// The number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read-side cursor operations, implemented for `&[u8]`.
///
/// Each `get_*` consumes from the front of the slice.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// `true` while bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8;

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16;

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64;
}

macro_rules! take_array {
    ($self:ident, $n:expr) => {{
        let (head, rest) = $self.split_at($n);
        *$self = rest;
        head.try_into().expect("exact length split")
    }};
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let bytes: [u8; 1] = take_array!(self, 1);
        bytes[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(take_array!(self, 2))
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(take_array!(self, 4))
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(take_array!(self, 8))
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(take_array!(self, 8))
    }
}

/// Write-side operations, implemented for [`BytesMut`].
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64);

    /// Appends a raw slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u16_le(300);
        buf.put_u32_le(70_000);
        buf.put_u64_le(1 << 40);
        buf.put_f64_le(2.5);
        buf.put_slice(b"xyz");
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u16_le(), 300);
        assert_eq!(cursor.get_u32_le(), 70_000);
        assert_eq!(cursor.get_u64_le(), 1 << 40);
        assert_eq!(cursor.get_f64_le(), 2.5);
        assert_eq!(cursor, b"xyz");
        assert_eq!(cursor.remaining(), 3);
        assert!(cursor.has_remaining());
    }

    #[test]
    fn bytes_derefs_and_slices() {
        let b = Bytes::copy_from_slice(&[1, 2, 3, 4]);
        assert_eq!(b.len(), 4);
        assert_eq!(&b[1..3], &[2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3, 4]);
    }
}

//! Value-generation strategies.
//!
//! A [`Strategy`] deterministically produces values from a [`TestRng`].
//! Unlike real proptest there is no value tree / shrinking machinery:
//! `generate` yields the final value directly.

use crate::test_runner::TestRng;
use rand::RngExt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Something that can generate values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen: Box::new(move |rng| self.generate(rng)),
        }
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V> {
    gen: Box<dyn Fn(&mut TestRng) -> V>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (self.gen)(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between several strategies of the same value type;
/// built by the [`prop_oneof!`](crate::prop_oneof) macro.
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Creates a union over `options`; panics if empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! requires at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.inner().random_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                rng.inner().random_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.inner().random_range(self.clone())
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategies {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                rng.inner().random_range(self.clone())
            }
        }
    )*};
}

float_range_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
    (A, B, C, D, E, F, G, H, I)
    (A, B, C, D, E, F, G, H, I, J)
}

/// Types with a canonical default strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.inner().random()
    }
}

macro_rules! int_arbitrary {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.inner().random::<u64>() as $ty
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.inner().random()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        rng.inner().random()
    }
}

/// The canonical strategy for `T`: `any::<bool>()`, `any::<u64>()`, ...
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("ranges_respect_bounds");
        for _ in 0..500 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
            let i = (10i32..=12).generate(&mut rng);
            assert!((10..=12).contains(&i));
        }
    }

    #[test]
    fn map_and_union_compose() {
        let mut rng = TestRng::deterministic("map_and_union_compose");
        let strat = crate::prop_oneof![(0u8..4).prop_map(|v| v as u64), Just(99u64), 100u64..200,];
        let mut saw_just = false;
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(v < 4 || v == 99 || (100..200).contains(&v));
            saw_just |= v == 99;
        }
        assert!(saw_just, "union never picked the Just arm");
    }

    #[test]
    fn generation_is_deterministic() {
        let sample = |label: &str| -> Vec<u64> {
            let mut rng = TestRng::deterministic(label);
            (0..32)
                .map(|_| (0u64..1_000_000).generate(&mut rng))
                .collect()
        };
        assert_eq!(sample("seed-a"), sample("seed-a"));
        assert_ne!(sample("seed-a"), sample("seed-b"));
    }
}

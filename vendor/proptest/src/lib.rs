//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: range / tuple / `Just` / mapped / union strategies,
//! `prop::collection::vec`, `any::<T>()`, the `proptest!` test macro with
//! optional `#![proptest_config(...)]`, and the `prop_assert!` /
//! `prop_assert_eq!` / `prop_oneof!` macros.
//!
//! Differences from the real crate, chosen deliberately for an offline,
//! deterministic build:
//!
//! * **No shrinking.** A failing case reports the generated inputs
//!   verbatim; rerunning is exact because generation is seeded from the
//!   test's fully qualified name.
//! * **Fixed seeding.** Every run explores the same case sequence, so CI
//!   and local runs agree. Bump [`test_runner::ProptestConfig::cases`]
//!   to widen exploration.

#![forbid(unsafe_code)]
// The doc example necessarily shows `proptest!` wrapping a `#[test]` —
// that is the macro's entire purpose — so the doctest-lint is moot here.
#![allow(clippy::test_attr_in_doctest)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` namespace (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __proptest_config: $crate::test_runner::ProptestConfig = $config;
            let mut __proptest_rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __proptest_case in 0..__proptest_config.cases {
                let mut __proptest_inputs: ::std::vec::Vec<(
                    &'static str,
                    ::std::string::String,
                )> = ::std::vec::Vec::new();
                $(
                    let __proptest_value = $crate::strategy::Strategy::generate(
                        &($strat),
                        &mut __proptest_rng,
                    );
                    __proptest_inputs.push((
                        stringify!($arg),
                        ::std::format!("{:?}", __proptest_value),
                    ));
                    let $arg = __proptest_value;
                )*
                let __proptest_result: ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(err) = __proptest_result {
                    let rendered: ::std::vec::Vec<::std::string::String> = __proptest_inputs
                        .iter()
                        .map(|(name, value)| ::std::format!("    {name} = {value}"))
                        .collect();
                    ::core::panic!(
                        "proptest case {} of {} failed: {}\ninputs:\n{}",
                        __proptest_case + 1,
                        __proptest_config.cases,
                        err,
                        rendered.join("\n"),
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Combines strategies producing the same value type; each generated case
/// picks one uniformly.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

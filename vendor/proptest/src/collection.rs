//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngExt;
use std::ops::{Range, RangeInclusive};

/// Admissible length specifications for [`vec()`].
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            lo: exact,
            hi_exclusive: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty vec size range");
        SizeRange {
            lo: range.start,
            hi_exclusive: range.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty vec size range");
        SizeRange {
            lo: *range.start(),
            hi_exclusive: range.end() + 1,
        }
    }
}

/// Generates a `Vec` whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng
            .inner()
            .random_range(self.size.lo..self.size.hi_exclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn vec_lengths_stay_in_range() {
        let mut rng = TestRng::deterministic("vec_lengths_stay_in_range");
        let strat = vec((0u64..10, 0.0f64..1.0), 1..80);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((1..80).contains(&v.len()));
        }
    }

    #[test]
    fn exact_size_vec() {
        let mut rng = TestRng::deterministic("exact_size_vec");
        let strat = vec(0u8..255, 7usize);
        assert_eq!(strat.generate(&mut rng).len(), 7);
    }
}

//! Test-runner plumbing: configuration, case failure, and the
//! deterministic RNG handed to strategies.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Per-test configuration; construct with
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the suite quick on the
        // single-core CI boxes this workspace targets while still
        // exercising a meaningful spread of inputs.
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case (produced by `prop_assert!` and friends).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The RNG strategies draw from. Seeded from the test's fully qualified
/// name (FNV-1a), so every run of a given test explores the identical
/// case sequence.
#[derive(Clone, Debug)]
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// Seeds from an arbitrary label, typically
    /// `module_path!()::test_name`.
    pub fn deterministic(label: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in label.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(hash),
        }
    }

    /// The underlying `rand` RNG.
    pub fn inner(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

//! Offline stand-in for `parking_lot`.
//!
//! Wraps the std primitives behind parking_lot's poison-free API:
//! `lock()` / `read()` / `write()` return guards directly. A poisoned
//! std lock (a panic while held) propagates the panic, which matches
//! parking_lot's behaviour of not tracking poisoning at all closely
//! enough for this workspace.

#![forbid(unsafe_code)]

use std::sync;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` cannot fail.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.inner.try_lock().ok()
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A readers-writer lock whose acquisitions cannot fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trips() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
